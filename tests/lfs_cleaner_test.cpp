// Segment cleaner tests: the mechanism preserves data; empty segments are
// reclaimed without reads; policies pick the right victims; write-cost
// accounting matches the definition; post-checkpoint segments are protected.

#include <string>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

class LfsCleanerTest : public ::testing::Test {
 protected:
  void Init(LfsConfig cfg, uint64_t disk_blocks = 4096) {
    cfg_ = cfg;
    disk_ = std::make_unique<MemDisk>(cfg_.block_size, disk_blocks);
    auto fs = LfsFileSystem::Mkfs(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  LfsConfig cfg_;
  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<LfsFileSystem> fs_;
};

TEST_F(LfsCleanerTest, CleaningPreservesLiveData) {
  Init(SmallConfig());
  // Create files, delete half (fragmenting segments), then force cleaning.
  for (int i = 0; i < 60; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 4000)));
  }
  ASSERT_OK(fs_->Sync());
  for (int i = 0; i < 60; i += 2) {
    ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  uint32_t clean_before = fs_->clean_segments();
  for (int pass = 0; pass < 10; pass++) {
    ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
    if (n == 0) {
      break;
    }
  }
  EXPECT_GT(fs_->stats().segments_cleaned, 0u);
  EXPECT_GE(fs_->clean_segments(), clean_before);
  // Every surviving file reads back intact after cleaning moved its blocks.
  for (int i = 1; i < 60; i += 2) {
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(i, 4000)) << i;
  }
}

TEST_F(LfsCleanerTest, CleanedDataSurvivesRemount) {
  Init(SmallConfig());
  for (int i = 0; i < 40; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 3000)));
  }
  ASSERT_OK(fs_->Sync());
  for (int i = 0; i < 40; i += 2) {
    ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->ForceClean().status());
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  auto fs = LfsFileSystem::Mount(disk_.get(), cfg_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  for (int i = 1; i < 40; i += 2) {
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(i, 3000)) << i;
  }
}

TEST_F(LfsCleanerTest, EmptySegmentsNeedNoRead) {
  Init(SmallConfig());
  // Whole-file deletes of files larger than a segment leave fully dead
  // segments (Section 5.2's explanation of the production numbers).
  for (int i = 0; i < 8; i++) {
    ASSERT_OK(fs_->WriteFile("/big" + std::to_string(i), TestContent(i, 64 * 1024)));
  }
  ASSERT_OK(fs_->Sync());
  for (int i = 0; i < 8; i++) {
    ASSERT_OK(fs_->Unlink("/big" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());  // sweep reclaims zero-live dirty segments for free
  uint64_t read_before = fs_->stats().clean_read_bytes;
  ASSERT_OK(fs_->ForceClean().status());
  // Any segments cleaned as empty must not have contributed read traffic.
  if (fs_->stats().segments_cleaned == fs_->stats().segments_cleaned_empty) {
    EXPECT_EQ(fs_->stats().clean_read_bytes, read_before);
  }
}

TEST_F(LfsCleanerTest, GreedyPicksLeastUtilized) {
  LfsConfig cfg = SmallConfig();
  cfg.policy = CleaningPolicy::kGreedy;
  cfg.age_sort = false;
  Init(cfg);
  for (int i = 0; i < 50; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 4000)));
  }
  // Delete a dense band so some segments are nearly empty and others full.
  for (int i = 0; i < 25; i++) {
    ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
  EXPECT_GT(n, 0u);
  // Cleaned segments had below-average utilization: avg cleaned u must be
  // well under the overall disk utilization band.
  EXPECT_LT(fs_->stats().AvgCleanedUtilization(), 0.9);
  for (int i = 25; i < 50; i++) {
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(i, 4000));
  }
}

TEST_F(LfsCleanerTest, WriteCostIsSaneUnderOverwrites) {
  LfsConfig cfg = SmallConfig();
  cfg.checkpoint_interval_bytes = 128 * 1024;
  Init(cfg, 2048);  // 2 MB so the log wraps and the cleaner must run
  Rng rng(42);
  // Sustained random overwrites of a working set at ~50% disk utilization:
  // segments seldom die completely, so the cleaner must copy live data.
  for (int i = 0; i < 60; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 16 * 1024)));
  }
  ASSERT_OK(fs_->Sync());
  for (int step = 0; step < 2500; step++) {
    int i = static_cast<int>(rng.NextBelow(60));
    ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/f" + std::to_string(i)));
    std::vector<uint8_t> block = TestContent(1000 + step, cfg.block_size);
    uint64_t fbn = rng.NextBelow(16);
    ASSERT_OK(fs_->WriteAt(ino, fbn * cfg.block_size, block));
  }
  ASSERT_OK(fs_->Sync());
  double wc = fs_->stats().WriteCost();
  EXPECT_GT(wc, 1.0);
  EXPECT_LT(wc, 10.0);
  EXPECT_GT(fs_->stats().cleaner_passes, 0u);
}

TEST_F(LfsCleanerTest, PostCheckpointSegmentsAreNotCleaned) {
  Init(SmallConfig());
  ASSERT_OK(fs_->Sync());
  // Data written after the checkpoint lives in tail segments.
  ASSERT_OK(fs_->WriteFile("/tail", TestContent(1, 48 * 1024)));
  uint64_t cleaned_before = fs_->stats().segments_cleaned;
  ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
  // Nothing is cleanable: every dirty segment is post-checkpoint (ForceClean
  // runs a raw pass without the boundary-advancing checkpoint).
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(fs_->stats().segments_cleaned, cleaned_before);
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/tail"));
  EXPECT_EQ(data, TestContent(1, 48 * 1024));
}

TEST_F(LfsCleanerTest, CostBenefitPrefersColdFragmentedSegments) {
  LfsConfig cfg = SmallConfig();
  cfg.policy = CleaningPolicy::kCostBenefit;
  Init(cfg, 8192);
  // Cold data: written once, never touched again.
  for (int i = 0; i < 20; i++) {
    ASSERT_OK(fs_->WriteFile("/cold" + std::to_string(i), TestContent(i, 8 * 1024)));
  }
  ASSERT_OK(fs_->Sync());
  // Fragment the cold band slightly.
  for (int i = 0; i < 20; i += 4) {
    ASSERT_OK(fs_->Unlink("/cold" + std::to_string(i)));
  }
  // Hot data: rewritten repeatedly, aging the clock well past the cold band.
  for (int round = 0; round < 30; round++) {
    for (int i = 0; i < 5; i++) {
      ASSERT_OK(fs_->WriteFile("/hot" + std::to_string(round) + "_" + std::to_string(i),
                               TestContent(round * 10 + i, 4 * 1024)));
      if (round > 0) {
        ASSERT_OK(
            fs_->Unlink("/hot" + std::to_string(round - 1) + "_" + std::to_string(i)));
      }
    }
  }
  ASSERT_OK(fs_->Sync());
  ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
  EXPECT_GT(n, 0u);
  // Everything still reads back.
  for (int i = 0; i < 20; i++) {
    if (i % 4 == 0) {
      continue;
    }
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/cold" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(i, 8 * 1024));
  }
}

TEST_F(LfsCleanerTest, CleaningUnderPressureKeepsSystemLive) {
  // A small disk under sustained overwrite pressure: the cleaner and the
  // boundary-advancing checkpoints must keep the system making progress.
  LfsConfig cfg = SmallConfig();
  Init(cfg, 2048);  // 2 MB
  Rng rng(7);
  for (int i = 0; i < 12; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 16 * 1024)));
  }
  for (int step = 0; step < 400; step++) {
    int i = static_cast<int>(rng.NextBelow(12));
    ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/f" + std::to_string(i)));
    std::vector<uint8_t> block = TestContent(step, cfg_.block_size);
    ASSERT_OK(fs_->WriteAt(ino, rng.NextBelow(16) * cfg_.block_size, block));
  }
  ASSERT_OK(fs_->Sync());
  for (int i = 0; i < 12; i++) {
    ASSERT_OK_AND_ASSIGN(FileStat st, fs_->StatPath("/f" + std::to_string(i)));
    EXPECT_EQ(st.size, 16u * 1024);
  }
}

TEST_F(LfsCleanerTest, LiveOnlyReadsPreserveDataAndReadLess) {
  // The paper's untried "read just the live blocks" variant must behave
  // identically to whole-segment reads, while reading fewer bytes on a
  // fragmented disk.
  uint64_t read_bytes[2];
  for (int mode = 0; mode < 2; mode++) {
    LfsConfig cfg = SmallConfig();
    cfg.cleaner_read_live_blocks_only = mode == 1;
    Init(cfg);
    for (int i = 0; i < 60; i++) {
      ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 4000)));
    }
    ASSERT_OK(fs_->Sync());
    for (int i = 0; i < 60; i += 2) {
      ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
    }
    ASSERT_OK(fs_->Sync());
    for (int pass = 0; pass < 10; pass++) {
      ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
      if (n == 0) {
        break;
      }
    }
    read_bytes[mode] = fs_->stats().clean_read_bytes;
    for (int i = 1; i < 60; i += 2) {
      ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
      EXPECT_EQ(data, TestContent(i, 4000)) << "mode " << mode << " file " << i;
    }
    // Cleaned data must also survive a remount in both modes.
    ASSERT_OK(fs_->Unmount());
    fs_.reset();
    auto fs = LfsFileSystem::Mount(disk_.get(), cfg);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f1"));
    EXPECT_EQ(data, TestContent(1, 4000));
  }
  EXPECT_LT(read_bytes[1], read_bytes[0]);  // sparse reads strictly less here
}

TEST_F(LfsCleanerTest, PerBlockAgesSurviveMigration) {
  // Per-block mtimes ride in the summary entries; a migrated block must keep
  // its original age so cold data keeps looking cold (Section 3.6's
  // motivation for recording ages).
  Init(SmallConfig());
  ASSERT_OK(fs_->WriteFile("/old", TestContent(1, 8 * 1024)));
  ASSERT_OK(fs_->Sync());
  uint64_t old_mtime = fs_->StatPath("/old")->mtime;
  // Age the clock with unrelated churn, fragmenting /old's segments.
  for (int i = 0; i < 40; i++) {
    ASSERT_OK(fs_->WriteFile("/churn" + std::to_string(i), TestContent(i, 4000)));
  }
  for (int i = 0; i < 40; i += 2) {
    ASSERT_OK(fs_->Unlink("/churn" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  for (int pass = 0; pass < 10; pass++) {
    ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
    if (n == 0) {
      break;
    }
  }
  // The file reads back and its recorded mtime never moved forward.
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/old"));
  EXPECT_EQ(data, TestContent(1, 8 * 1024));
  EXPECT_EQ(fs_->StatPath("/old")->mtime, old_mtime);
}

TEST_F(LfsCleanerTest, StatsTrackTable2Columns) {
  Init(SmallConfig());
  for (int i = 0; i < 30; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 6000)));
  }
  ASSERT_OK(fs_->Sync());
  for (int i = 0; i < 30; i += 2) {
    ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->ForceClean().status());
  const LfsStats& st = fs_->stats();
  EXPECT_GE(st.segments_cleaned, st.segments_cleaned_empty);
  EXPECT_GE(st.EmptyCleanedFraction(), 0.0);
  EXPECT_LE(st.EmptyCleanedFraction(), 1.0);
  EXPECT_GE(st.AvgCleanedUtilization(), 0.0);
  EXPECT_LE(st.AvgCleanedUtilization(), 1.0);
  EXPECT_GT(st.WriteCost(), 0.99);
}

}  // namespace
}  // namespace lfs
