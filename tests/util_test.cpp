// Unit tests for src/util: Status/Result, the little-endian codec, CRC-32
// (against known vectors), the deterministic RNG, histograms, and tables.

#include <gtest/gtest.h>

#include "src/util/codec.h"
#include "src/util/crc32.h"
#include "src/util/histogram.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/table.h"

namespace lfs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = NotFoundError("no such file '/a'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: no such file '/a'");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); c++) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> bad = NoSpaceError("full");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNoSpace);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) {
      return InvalidArgumentError("nope");
    }
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    LFS_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, RoundTripsAllWidths) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU8(0xAB);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutLengthPrefixedString("hello");
  enc.PadTo(64);
  ASSERT_EQ(buf.size(), 64u);

  Decoder dec(buf);
  EXPECT_EQ(dec.GetU8(), 0xAB);
  EXPECT_EQ(dec.GetU16(), 0xBEEF);
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetLengthPrefixedString(), "hello");
  EXPECT_TRUE(dec.ok());
}

TEST(CodecTest, LittleEndianOnDisk) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodecTest, OverreadSetsStickyError) {
  std::vector<uint8_t> buf = {1, 2};
  Decoder dec(buf);
  EXPECT_EQ(dec.GetU32(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.GetU64(), 0u);  // still failed, no UB
}

TEST(Crc32Test, KnownVectors) {
  // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  std::span<const uint8_t> data(reinterpret_cast<const uint8_t*>(s), 9);
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
  // Empty input.
  EXPECT_EQ(Crc32({}), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  uint32_t state = Crc32Init();
  state = Crc32Update(state, std::span<const uint8_t>(data).subspan(0, 400));
  state = Crc32Update(state, std::span<const uint8_t>(data).subspan(400));
  EXPECT_EQ(Crc32Finish(state), Crc32(data));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.NextInRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(RngTest, NextDoubleUniformish) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, FileSizeBoundedAndPositive) {
  Rng rng(13);
  for (int i = 0; i < 10000; i++) {
    uint64_t s = rng.NextFileSize(8192, 65536);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 65536u);
  }
}

TEST(HistogramTest, BucketsAndFractions) {
  Histogram h(10);
  h.Add(0.05);
  h.Add(0.05);
  h.Add(0.95);
  h.Add(1.0);   // clamps into the last bucket
  h.Add(-0.5);  // clamps into the first bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.6);
  EXPECT_NEAR(h.BucketMid(0), 0.05, 1e-9);
}

TEST(HistogramTest, RendersAsciiAndCsv) {
  Histogram h(4);
  h.Add(0.1);
  h.Add(0.9);
  std::string ascii = h.ToAscii("test");
  EXPECT_NE(ascii.find("test (n=2)"), std::string::npos);
  std::string csv = h.ToCsv();
  EXPECT_NE(csv.find("utilization,fraction"), std::string::npos);
}

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long header"});
  t.AddRow({"xxxxxxx", "1"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| a       | long header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxxxx | 1           |"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::FmtPercent(0.656), "66%");
  EXPECT_EQ(Table::FmtPercent(0.5, 1), "50.0%");
}

}  // namespace
}  // namespace lfs
