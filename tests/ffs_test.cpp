// Tests for the baseline FFS implementation: basic operation, persistence,
// the synchronous-metadata behaviour the paper measures, capacity limits,
// and fsck repair.

#include <string>

#include <gtest/gtest.h>

#include "src/ffs/ffs.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::ffs::FfsFileSystem;
using ::lfs::testing::TestContent;

class FfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<MemDisk>(1024, 8192);  // 8 MB, 1-KB blocks
    auto fs = FfsFileSystem::Mkfs(disk_.get(), 1024);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<FfsFileSystem> fs_;
};

TEST_F(FfsTest, CreateWriteRead) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(1, 5000)));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f"));
  EXPECT_EQ(data, TestContent(1, 5000));
}

TEST_F(FfsTest, PersistsAcrossRemount) {
  ASSERT_OK(fs_->Mkdir("/d"));
  ASSERT_OK(fs_->WriteFile("/d/f", TestContent(2, 12345)));
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  auto fs = FfsFileSystem::Mount(disk_.get());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/d/f"));
  EXPECT_EQ(data, TestContent(2, 12345));
}

TEST_F(FfsTest, MetadataWritesAreSynchronousAndCounted) {
  uint64_t before = fs_->stats().metadata_writes;
  ASSERT_OK(fs_->Create("/newfile").status());
  uint64_t per_create = fs_->stats().metadata_writes - before;
  // The paper counts at least five small I/Os per create (two inode writes,
  // directory data, directory inode, ...).
  EXPECT_GE(per_create, 4u);
}

TEST_F(FfsTest, InodesLiveAtFixedAddresses) {
  ASSERT_OK_AND_ASSIGN(InodeNum a, fs_->Create("/a"));
  const auto& sb = fs_->superblock();
  // Deleting and re-creating in the same group reuses the same fixed slot.
  uint64_t block_a = sb.InodeBlockOf(a);
  ASSERT_OK(fs_->Unlink("/a"));
  ASSERT_OK_AND_ASSIGN(InodeNum b, fs_->Create("/b"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(sb.InodeBlockOf(b), block_a);
}

TEST_F(FfsTest, SequentialAllocationIsContiguous) {
  ASSERT_OK(fs_->WriteFile("/seq", TestContent(3, 40 * 1024)));
  // Reading it back coalesces into few sequential I/Os; verify indirectly by
  // correctness (contiguity itself is policy, checked via the read path).
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/seq"));
  EXPECT_EQ(data, TestContent(3, 40 * 1024));
}

TEST_F(FfsTest, NinetyPercentLimitEnforced) {
  Status st = OkStatus();
  int i = 0;
  std::vector<uint8_t> chunk = TestContent(4, 256 * 1024);
  while (st.ok() && i < 100) {
    st = fs_->WriteFile("/fill" + std::to_string(i++), chunk);
  }
  EXPECT_EQ(st.code(), StatusCode::kNoSpace);
  // At least ~10% of data blocks must still be free.
  const auto& sb = fs_->superblock();
  uint64_t total = uint64_t{sb.ngroups} * sb.data_blocks_per_group();
  EXPECT_GE(fs_->free_data_blocks() * 100, total * 9);
}

TEST_F(FfsTest, HardLinksAndRename) {
  ASSERT_OK(fs_->WriteFile("/x", TestContent(5, 100)));
  ASSERT_OK(fs_->Link("/x", "/y"));
  ASSERT_OK_AND_ASSIGN(FileStat st, fs_->StatPath("/y"));
  EXPECT_EQ(st.nlink, 2u);
  ASSERT_OK(fs_->Rename("/y", "/z"));
  ASSERT_OK(fs_->Unlink("/x"));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/z"));
  EXPECT_EQ(data, TestContent(5, 100));
}

TEST_F(FfsTest, LargeFileWithIndirects) {
  std::vector<uint8_t> big = TestContent(6, 300 * 1024);
  ASSERT_OK(fs_->WriteFile("/big", big));
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  auto fs = FfsFileSystem::Mount(disk_.get());
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/big"));
  EXPECT_EQ(data, big);
}

TEST_F(FfsTest, FsckCleanFilesystemReportsNoFixes) {
  ASSERT_OK(fs_->Mkdir("/d"));
  ASSERT_OK(fs_->WriteFile("/d/f", TestContent(7, 9000)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK_AND_ASSIGN(ffs::FsckReport report, fs_->Fsck());
  EXPECT_EQ(report.fixes, 0u);
  EXPECT_GT(report.inodes_scanned, 0u);
  EXPECT_GE(report.directories_walked, 2u);  // root + /d
  // Data still readable after the scan.
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/d/f"));
  EXPECT_EQ(data, TestContent(7, 9000));
}

TEST_F(FfsTest, FsckRepairsStaleBitmapsAfterCrash) {
  // Simulate a crash that loses the async bitmap and pointer writes: sync
  // some files (fully durable), then create more without syncing and
  // "crash" by remounting. The bitmaps on disk are stale; fsck must rebuild
  // them from the inode tables, keeping the synced files intact.
  ASSERT_OK(fs_->WriteFile("/a", TestContent(8, 4000)));
  ASSERT_OK(fs_->WriteFile("/b", TestContent(9, 4000)));
  ASSERT_OK(fs_->Sync());
  // Post-sync activity whose bitmap/pointer updates never reach the disk.
  ASSERT_OK(fs_->WriteFile("/lost1", TestContent(10, 4000)));
  ASSERT_OK(fs_->WriteFile("/lost2", TestContent(11, 4000)));
  fs_.reset();  // crash: no Sync, bitmaps on disk are stale
  auto fs = FfsFileSystem::Mount(disk_.get());
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  ASSERT_OK_AND_ASSIGN(ffs::FsckReport report, fs_->Fsck());
  EXPECT_GT(report.fixes, 0u);  // stale bitmap bits were repaired
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/a"));
  EXPECT_EQ(data, TestContent(8, 4000));
  ASSERT_OK_AND_ASSIGN(data, fs_->ReadFile("/b"));
  EXPECT_EQ(data, TestContent(9, 4000));
  // After fsck, new allocations cannot collide with recovered files.
  ASSERT_OK(fs_->WriteFile("/c", TestContent(12, 4000)));
  ASSERT_OK_AND_ASSIGN(data, fs_->ReadFile("/a"));
  EXPECT_EQ(data, TestContent(8, 4000));
}

TEST_F(FfsTest, FsckFixesWrongLinkCountsAndOrphans) {
  // Build a consistent tree, then sabotage it the way a crash between
  // synchronous metadata writes can: an inode with a too-high link count and
  // an allocated inode with no directory entry (orphan).
  ASSERT_OK(fs_->WriteFile("/a", TestContent(20, 3000)));
  ASSERT_OK(fs_->WriteFile("/orphan", TestContent(21, 3000)));
  ASSERT_OK(fs_->Sync());
  // Sabotage 1: remove /orphan's directory entry only (keeps the inode).
  // Emulate by unlinking via internals: remove the name with a fresh FS
  // instance is not possible, so instead simulate the classic crash: unlink
  // writes the dir block but the crash happens before the inode's nlink is
  // decremented. We replay that by re-adding the inode by hand: simplest
  // equivalent sabotage is editing the directory block on disk.
  // Easier and equally valid: corrupt nlink of /a via a raw inode rewrite.
  const auto& sb = fs_->superblock();
  ASSERT_OK_AND_ASSIGN(InodeNum a, fs_->Lookup("/a"));
  std::vector<uint8_t> block(sb.block_size);
  ASSERT_TRUE(disk_->Read(sb.InodeBlockOf(a), 1, block).ok());
  auto slot = std::span<uint8_t>(block).subspan(
      size_t{sb.InodeSlotOf(a)} * ffs::kFfsInodeSize, ffs::kFfsInodeSize);
  auto inode = ffs::FfsInode::DecodeFrom(slot);
  ASSERT_TRUE(inode.ok());
  inode->nlink = 7;  // lie
  inode->EncodeTo(slot);
  ASSERT_TRUE(disk_->Write(sb.InodeBlockOf(a), 1, block).ok());
  // Remount so the in-memory caches don't mask the sabotage, then fsck.
  fs_.reset();
  fs_ = std::move(FfsFileSystem::Mount(disk_.get())).value();
  ASSERT_OK_AND_ASSIGN(ffs::FsckReport report, fs_->Fsck());
  EXPECT_GT(report.fixes, 0u);
  ASSERT_OK_AND_ASSIGN(FileStat st, fs_->StatPath("/a"));
  EXPECT_EQ(st.nlink, 1u);  // repaired
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/a"));
  EXPECT_EQ(data, TestContent(20, 3000));
}

TEST_F(FfsTest, DirectoriesSpreadAcrossGroups) {
  ASSERT_OK(fs_->Mkdir("/d1"));
  ASSERT_OK(fs_->Mkdir("/d2"));
  ASSERT_OK_AND_ASSIGN(InodeNum d1, fs_->Lookup("/d1"));
  ASSERT_OK_AND_ASSIGN(InodeNum d2, fs_->Lookup("/d2"));
  const auto& sb = fs_->superblock();
  if (sb.ngroups > 1) {
    EXPECT_NE((d1 - 1) / sb.inodes_per_group, (d2 - 1) / sb.inodes_per_group);
  }
}

}  // namespace
}  // namespace lfs
