// BlockCache / CachedBlockDevice unit tests: LRU eviction order, dirty
// write-back ordering and coalescing, pin/unpin semantics, shard
// distribution, and the device wrapper's run-granular miss handling.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/block_cache.h"
#include "src/cache/cached_device.h"
#include "src/disk/mem_disk.h"
#include "tests/test_util.h"

namespace lfs::cache {
namespace {

constexpr uint32_t kBs = 512;

std::vector<uint8_t> Fill(uint8_t byte) { return std::vector<uint8_t>(kBs, byte); }

// A writeback sink that records every callback invocation. Mutex-guarded:
// different shards may write back concurrently (a real target device has its
// own lock, so the cache does not serialize the callback across shards).
struct Sink {
  struct Call {
    BlockNo block;
    uint64_t count;
    std::vector<uint8_t> data;
  };
  std::mutex mu;
  std::vector<Call> calls;
  Status fail_with = OkStatus();

  BlockCache::WritebackFn fn() {
    return [this](BlockNo block, uint64_t count, std::span<const uint8_t> data) {
      std::lock_guard<std::mutex> lock(mu);
      if (!fail_with.ok()) {
        return fail_with;
      }
      calls.push_back({block, count, std::vector<uint8_t>(data.begin(), data.end())});
      return OkStatus();
    };
  }
};

BlockCacheConfig Config(uint64_t capacity, uint32_t shards) {
  BlockCacheConfig cfg;
  cfg.capacity_blocks = capacity;
  cfg.shards = shards;
  cfg.block_size = kBs;
  return cfg;
}

TEST(BlockCacheTest, GetMissThenHitAfterPutClean) {
  Sink sink;
  BlockCache cache(Config(8, 1), sink.fn());
  std::vector<uint8_t> out(kBs);
  EXPECT_FALSE(cache.Get(7, out));
  cache.PutClean(7, Fill(0xAB));
  ASSERT_TRUE(cache.Get(7, out));
  EXPECT_EQ(out, Fill(0xAB));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedFirst) {
  Sink sink;
  BlockCache cache(Config(3, 1), sink.fn());
  cache.PutClean(1, Fill(1));
  cache.PutClean(2, Fill(2));
  cache.PutClean(3, Fill(3));
  // Touch 1 so 2 becomes the LRU victim.
  std::vector<uint8_t> out(kBs);
  ASSERT_TRUE(cache.Get(1, out));
  cache.PutClean(4, Fill(4));  // forces one eviction
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(sink.calls.empty());  // clean victim: no writeback
}

TEST(BlockCacheTest, DirtyVictimIsWrittenBackBeforeEviction) {
  Sink sink;
  BlockCache cache(Config(2, 1), sink.fn());
  cache.PutDirty(10, Fill(0x10));
  cache.PutClean(11, Fill(0x11));
  cache.PutClean(12, Fill(0x12));  // evicts 10 (LRU), which is dirty
  ASSERT_EQ(sink.calls.size(), 1u);
  EXPECT_EQ(sink.calls[0].block, 10u);
  EXPECT_EQ(sink.calls[0].count, 1u);
  EXPECT_EQ(sink.calls[0].data, Fill(0x10));
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
  EXPECT_FALSE(cache.Contains(10));
}

TEST(BlockCacheTest, PutCleanNeverClobbersDirtyFrame) {
  Sink sink;
  BlockCache cache(Config(4, 1), sink.fn());
  cache.PutDirty(5, Fill(0xDD));
  // A racing read fill must not overwrite newer dirty contents.
  cache.PutClean(5, Fill(0xEE));
  std::vector<uint8_t> out(kBs);
  ASSERT_TRUE(cache.Get(5, out));
  EXPECT_EQ(out, Fill(0xDD));
  EXPECT_TRUE(cache.IsDirty(5));
}

TEST(BlockCacheTest, PinnedFramesSurviveEvictionPressure) {
  Sink sink;
  BlockCache cache(Config(2, 1), sink.fn());
  cache.PutDirty(1, Fill(1));
  cache.PutClean(2, Fill(2));
  ASSERT_TRUE(cache.Pin(1));
  ASSERT_TRUE(cache.Pin(2));
  // Every frame pinned: the shard overcommits rather than evict or fail.
  cache.PutClean(3, Fill(3));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_GE(cache.stats().pin_overcommits, 1u);
  cache.Unpin(1);
  cache.Unpin(2);
  // Unpinned again: the next insert can evict.
  cache.PutClean(4, Fill(4));
  EXPECT_LE(cache.size(), 3u);
  EXPECT_FALSE(cache.Pin(99));  // absent block
}

TEST(BlockCacheTest, FlushAllCoalescesSortedRuns) {
  Sink sink;
  BlockCache cache(Config(16, 4), sink.fn());
  // Dirty blocks 7,5,6 (one run once sorted) and 20 (its own run),
  // interleaved with clean blocks that must not be written back.
  cache.PutDirty(7, Fill(7));
  cache.PutClean(9, Fill(9));
  cache.PutDirty(5, Fill(5));
  cache.PutDirty(6, Fill(6));
  cache.PutDirty(20, Fill(20));
  ASSERT_OK(cache.FlushAll());
  ASSERT_EQ(sink.calls.size(), 2u);
  EXPECT_EQ(sink.calls[0].block, 5u);
  EXPECT_EQ(sink.calls[0].count, 3u);
  // Run payload is assembled in ascending block order.
  EXPECT_EQ(std::vector<uint8_t>(sink.calls[0].data.begin(),
                                 sink.calls[0].data.begin() + kBs),
            Fill(5));
  EXPECT_EQ(sink.calls[1].block, 20u);
  EXPECT_EQ(sink.calls[1].count, 1u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_EQ(cache.size(), 5u);  // frames stay resident, now clean
  // A second flush has nothing to do.
  ASSERT_OK(cache.FlushAll());
  EXPECT_EQ(sink.calls.size(), 2u);
}

TEST(BlockCacheTest, FlushAllKeepsDirtyBitsOnFailure) {
  Sink sink;
  BlockCache cache(Config(8, 1), sink.fn());
  cache.PutDirty(3, Fill(3));
  sink.fail_with = IoError("injected");
  EXPECT_FALSE(cache.FlushAll().ok());
  EXPECT_TRUE(cache.IsDirty(3));  // retried by the next flush
  sink.fail_with = OkStatus();
  ASSERT_OK(cache.FlushAll());
  EXPECT_FALSE(cache.IsDirty(3));
}

TEST(BlockCacheTest, ShardDistributionCoversAllShards) {
  Sink sink;
  BlockCache cache(Config(1024, 8), sink.fn());
  ASSERT_EQ(cache.shard_count(), 8u);
  for (BlockNo b = 0; b < 1024; b++) {
    cache.PutClean(b, Fill(static_cast<uint8_t>(b)));
  }
  // The splitmix64 shard hash should spread sequential block numbers across
  // every shard without pathological skew (no shard empty, none > 4x fair).
  uint64_t total = 0;
  for (uint32_t s = 0; s < cache.shard_count(); s++) {
    uint64_t n = cache.shard_size(s);
    EXPECT_GT(n, 0u) << "shard " << s << " empty";
    EXPECT_LT(n, 4 * 1024 / 8) << "shard " << s << " skewed";
    total += n;
  }
  EXPECT_EQ(total, cache.size());
}

TEST(BlockCacheTest, DropCleanKeepsDirtyAndPinned) {
  Sink sink;
  BlockCache cache(Config(8, 2), sink.fn());
  cache.PutClean(1, Fill(1));
  cache.PutDirty(2, Fill(2));
  cache.PutClean(3, Fill(3));
  ASSERT_TRUE(cache.Pin(3));
  cache.DropClean();
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  cache.Unpin(3);
}

TEST(BlockCacheTest, ConcurrentMixedTrafficKeepsFramesCoherent) {
  Sink sink;
  BlockCache cache(Config(64, 4), sink.fn());
  // Each block's contents are a function of its number, from every thread,
  // so any torn or crossed frame shows up as a content mismatch.
  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      std::vector<uint8_t> out(kBs);
      for (int i = 0; i < 4000; i++) {
        BlockNo b = static_cast<BlockNo>((i * 7 + t * 13) % 128);
        if (i % 3 == 0) {
          cache.PutDirty(b, Fill(static_cast<uint8_t>(b)));
        } else if (cache.Get(b, out)) {
          if (out != Fill(static_cast<uint8_t>(b))) {
            failed.store(true);
          }
        } else {
          cache.PutClean(b, Fill(static_cast<uint8_t>(b)));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  ASSERT_OK(cache.FlushAll());
  for (const auto& call : sink.calls) {
    for (uint64_t i = 0; i < call.count; i++) {
      EXPECT_EQ(call.data[i * kBs], static_cast<uint8_t>(call.block + i));
    }
  }
}

TEST(CachedDeviceTest, ReReadsAreServedFromCache) {
  MemDisk disk(kBs, 256);
  for (BlockNo b = 0; b < 256; b++) {
    std::vector<uint8_t> d = Fill(static_cast<uint8_t>(b));
    ASSERT_OK(disk.Write(b, 1, d));
  }
  // Count inner reads through a thin wrapper.
  struct CountingDisk : BlockDevice {
    explicit CountingDisk(BlockDevice* d) : d_(d) {}
    uint32_t block_size() const override { return d_->block_size(); }
    uint64_t block_count() const override { return d_->block_count(); }
    Status Read(BlockNo b, uint64_t n, std::span<uint8_t> out) override {
      reads++;
      read_blocks += n;
      return d_->Read(b, n, out);
    }
    Status Write(BlockNo b, uint64_t n, std::span<const uint8_t> data) override {
      return d_->Write(b, n, data);
    }
    Status Flush() override { return d_->Flush(); }
    BlockDevice* d_;
    uint64_t reads = 0;
    uint64_t read_blocks = 0;
  } counting(&disk);

  CachedDeviceOptions opts;
  opts.capacity_blocks = 256;
  CachedBlockDevice dev(&counting, opts);

  std::vector<uint8_t> out(64 * kBs);
  ASSERT_OK(dev.Read(0, 64, out));  // cold: one coalesced inner read
  EXPECT_EQ(counting.reads, 1u);
  EXPECT_EQ(counting.read_blocks, 64u);
  ASSERT_OK(dev.Read(0, 64, out));  // warm: zero inner reads
  EXPECT_EQ(counting.reads, 1u);
  for (BlockNo b = 0; b < 64; b++) {
    EXPECT_EQ(out[b * kBs], static_cast<uint8_t>(b));
  }
  // A partially cached range only fetches the gaps.
  ASSERT_OK(dev.Read(32, 64, out));  // 32..63 cached, 64..95 not
  EXPECT_EQ(counting.reads, 2u);
  EXPECT_EQ(counting.read_blocks, 96u);
  // Warm full re-read (64 hits) plus the cached half of the partial read
  // (32 hits); the cold read was all misses.
  EXPECT_EQ(dev.cache().stats().hits, 64u + 32u);
  EXPECT_EQ(dev.cache().stats().misses, 64u + 32u);
}

TEST(CachedDeviceTest, WriteBackReachesInnerOnFlush) {
  MemDisk disk(kBs, 64);
  CachedDeviceOptions opts;
  opts.capacity_blocks = 64;
  CachedBlockDevice dev(&disk, opts);
  std::vector<uint8_t> d = Fill(0x5A);
  ASSERT_OK(dev.Write(9, 1, d));
  // Write-back: the inner device does not have the data yet.
  std::vector<uint8_t> raw(kBs);
  ASSERT_OK(disk.Read(9, 1, raw));
  EXPECT_NE(raw, d);
  // But a read through the device sees it (from the dirty frame).
  std::vector<uint8_t> out(kBs);
  ASSERT_OK(dev.Read(9, 1, out));
  EXPECT_EQ(out, d);
  ASSERT_OK(dev.Flush());
  ASSERT_OK(disk.Read(9, 1, raw));
  EXPECT_EQ(raw, d);
}

TEST(CachedDeviceTest, WriteThroughReachesInnerImmediately) {
  MemDisk disk(kBs, 64);
  CachedDeviceOptions opts;
  opts.capacity_blocks = 64;
  opts.write_through = true;
  CachedBlockDevice dev(&disk, opts);
  std::vector<uint8_t> d = Fill(0x77);
  ASSERT_OK(dev.Write(3, 1, d));
  std::vector<uint8_t> raw(kBs);
  ASSERT_OK(disk.Read(3, 1, raw));
  EXPECT_EQ(raw, d);
  EXPECT_EQ(dev.cache().dirty_count(), 0u);
  // And the frame serves re-reads.
  std::vector<uint8_t> out(kBs);
  ASSERT_OK(dev.Read(3, 1, out));
  EXPECT_EQ(out, d);
  EXPECT_EQ(dev.cache().stats().hits, 1u);
}

}  // namespace
}  // namespace lfs::cache
