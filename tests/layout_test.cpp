// Serialization tests for every on-disk structure: round-trips, corruption
// detection (bad magic, bad CRC, truncation), geometry computation, and a
// parameterized random round-trip sweep.

#include <gtest/gtest.h>

#include "src/lfs/layout.h"
#include "src/util/rng.h"

namespace lfs {
namespace {

constexpr uint32_t kBs = 4096;

TEST(SuperblockTest, ComputeGeometry) {
  auto sb = Superblock::Compute(kBs, 76800, 256, 65536);  // 300 MB
  ASSERT_TRUE(sb.ok()) << sb.status().ToString();
  EXPECT_EQ(sb->block_size, kBs);
  EXPECT_GT(sb->nsegments, 250u);
  EXPECT_GT(sb->seg_start, 0u);
  EXPECT_EQ(sb->cr_base0, 1u);
  EXPECT_EQ(sb->cr_base1, 1 + sb->cr_blocks);
  // Every segment fits on the device.
  EXPECT_LE(sb->SegmentBase(sb->nsegments - 1) + sb->segment_blocks, 76800u);
  // SegOf is the inverse of SegmentBase.
  EXPECT_EQ(sb->SegOf(sb->SegmentBase(5)), 5u);
  EXPECT_EQ(sb->SegOf(sb->SegmentBase(5) + sb->segment_blocks - 1), 5u);
  EXPECT_EQ(sb->SegOf(0), kNilSeg);  // fixed area
}

TEST(SuperblockTest, RejectsBadGeometry) {
  EXPECT_FALSE(Superblock::Compute(1000, 76800, 256, 1024).ok());  // not power of two
  EXPECT_FALSE(Superblock::Compute(kBs, 20, 256, 1024).ok());      // too small
  EXPECT_FALSE(Superblock::Compute(kBs, 76800, 4, 1024).ok());     // tiny segments
}

TEST(SuperblockTest, RoundTripAndCorruption) {
  auto sb = Superblock::Compute(kBs, 76800, 256, 65536);
  ASSERT_TRUE(sb.ok());
  std::vector<uint8_t> block(kBs);
  sb->EncodeTo(block);
  auto back = Superblock::DecodeFrom(block);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->nsegments, sb->nsegments);
  EXPECT_EQ(back->seg_start, sb->seg_start);
  EXPECT_EQ(back->imap_chunks, sb->imap_chunks);

  block[3] ^= 0xFF;  // corrupt the magic
  EXPECT_EQ(Superblock::DecodeFrom(block).status().code(), StatusCode::kCorruption);
  sb->EncodeTo(block);
  block[10] ^= 0x01;  // corrupt a body byte: CRC must catch it
  EXPECT_EQ(Superblock::DecodeFrom(block).status().code(), StatusCode::kCorruption);
}

TEST(InodeTest, RoundTrip) {
  Inode ino;
  ino.ino = 1234;
  ino.type = FileType::kDirectory;
  ino.nlink = 3;
  ino.version = 99;
  ino.size = 0xABCDEF01;
  ino.mtime = 777;
  for (uint32_t i = 0; i < kNumDirect; i++) {
    ino.direct[i] = 1000 + i;
  }
  ino.single_indirect = 5555;
  ino.double_indirect = 6666;
  std::vector<uint8_t> slot(kInodeSlotSize);
  ino.EncodeTo(slot);
  auto back = Inode::DecodeFrom(slot);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ino, ino.ino);
  EXPECT_EQ(back->type, ino.type);
  EXPECT_EQ(back->nlink, ino.nlink);
  EXPECT_EQ(back->version, ino.version);
  EXPECT_EQ(back->size, ino.size);
  EXPECT_EQ(back->mtime, ino.mtime);
  EXPECT_EQ(back->direct[11], ino.direct[11]);
  EXPECT_EQ(back->single_indirect, ino.single_indirect);
  EXPECT_EQ(back->double_indirect, ino.double_indirect);
}

TEST(InodeTest, ZeroedSlotDecodesAsNil) {
  std::vector<uint8_t> slot(kInodeSlotSize, 0);
  auto ino = Inode::DecodeFrom(slot);
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(ino->ino, kNilInode);
  EXPECT_EQ(ino->type, FileType::kNone);
}

TEST(SegmentSummaryTest, RoundTripWithEntries) {
  SegmentSummary sum;
  sum.seq = 42;
  sum.timestamp = 1000;
  sum.youngest_mtime = 999;
  sum.payload_crc = 0xFEEDFACE;
  for (int i = 0; i < 50; i++) {
    sum.entries.push_back(SummaryEntry{BlockKind::kData, static_cast<InodeNum>(i),
                                       static_cast<uint64_t>(i * 3), 7});
  }
  std::vector<uint8_t> block(kBs);
  sum.EncodeTo(block);
  auto back = SegmentSummary::DecodeFrom(block);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(back->youngest_mtime, 999u);
  EXPECT_EQ(back->payload_crc, 0xFEEDFACEu);
  ASSERT_EQ(back->entries.size(), 50u);
  EXPECT_EQ(back->entries[49].fbn, 147u);
  EXPECT_EQ(back->entries[49].kind, BlockKind::kData);
}

TEST(SegmentSummaryTest, CorruptionRejected) {
  SegmentSummary sum;
  sum.seq = 1;
  sum.entries.push_back(SummaryEntry{BlockKind::kData, 1, 0, 1});
  std::vector<uint8_t> block(kBs);
  sum.EncodeTo(block);
  block[100] ^= 0x40;  // flip a bit anywhere
  EXPECT_EQ(SegmentSummary::DecodeFrom(block).status().code(), StatusCode::kCorruption);
  std::vector<uint8_t> zeros(kBs, 0);
  EXPECT_FALSE(SegmentSummary::DecodeFrom(zeros).ok());
}

TEST(ImapEntryTest, RoundTrip) {
  ImapEntry e;
  e.inode_block = 12345;
  e.slot = 17;
  e.version = 3;
  e.atime = 888;
  std::vector<uint8_t> buf(kImapEntrySize);
  e.EncodeTo(buf);
  ImapEntry back = ImapEntry::DecodeFrom(buf);
  EXPECT_EQ(back.inode_block, 12345u);
  EXPECT_EQ(back.slot, 17u);
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.atime, 888u);
  EXPECT_TRUE(back.allocated());
}

TEST(SegUsageEntryTest, RoundTrip) {
  SegUsageEntry e;
  e.live_bytes = 1 << 20;
  e.last_write = 4242;
  e.state = SegState::kActive;
  std::vector<uint8_t> buf(kUsageEntrySize);
  e.EncodeTo(buf);
  SegUsageEntry back = SegUsageEntry::DecodeFrom(buf);
  EXPECT_EQ(back.live_bytes, 1u << 20);
  EXPECT_EQ(back.last_write, 4242u);
  EXPECT_EQ(back.state, SegState::kActive);
}

TEST(CheckpointTest, RoundTripAndTornWriteDetection) {
  Checkpoint ck;
  ck.ckpt_seq = 17;
  ck.timestamp = 1000;
  ck.next_summary_seq = 555;
  ck.cur_segment = 12;
  ck.cur_offset = 100;
  ck.ninodes = 2000;
  ck.clock = 98765;
  for (int i = 0; i < 30; i++) {
    ck.imap_chunk_addr.push_back(7000 + i);
  }
  ck.usage_chunk_addr = {8000, 8001};
  uint32_t blocks = Checkpoint::RegionBlocks(kBs, 30, 2);
  std::vector<uint8_t> region(size_t{blocks} * kBs);
  ck.EncodeTo(region);
  auto back = Checkpoint::DecodeFrom(region);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ckpt_seq, 17u);
  EXPECT_EQ(back->next_summary_seq, 555u);
  EXPECT_EQ(back->cur_segment, 12u);
  EXPECT_EQ(back->ninodes, 2000u);
  EXPECT_EQ(back->imap_chunk_addr[29], 7029u);
  EXPECT_EQ(back->usage_chunk_addr[1], 8001u);

  // A torn region write (body changed, trailer stale) must be rejected.
  region[8] ^= 0x01;
  EXPECT_EQ(Checkpoint::DecodeFrom(region).status().code(), StatusCode::kCorruption);
}

TEST(DirBlockTest, RoundTripAndCapacity) {
  std::vector<DirEntry> entries = {
      {"alpha", 10, FileType::kRegular},
      {"beta", 11, FileType::kDirectory},
      {std::string(255, 'z'), 12, FileType::kRegular},
  };
  std::vector<uint8_t> block = EncodeDirBlock(entries, kBs);
  ASSERT_EQ(block.size(), kBs);
  auto back = DecodeDirBlock(block);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].name, "alpha");
  EXPECT_EQ((*back)[2].ino, 12u);
  EXPECT_GT(DirBlockCapacity(kBs), 4000u);
  EXPECT_EQ(DirEntryEncodedSize(entries[0]), 4 + 1 + 2 + 5u);
}

TEST(DirLogTest, RoundTripAllOps) {
  std::vector<DirLogRecord> records;
  DirLogRecord create;
  create.op = DirOp::kCreate;
  create.dir_ino = 1;
  create.name = "newfile";
  create.target_ino = 42;
  create.target_version = 2;
  create.new_nlink = 1;
  create.target_type = FileType::kRegular;
  records.push_back(create);

  DirLogRecord rename;
  rename.op = DirOp::kRename;
  rename.dir_ino = 1;
  rename.name = "from";
  rename.target_ino = 43;
  rename.target_version = 1;
  rename.new_nlink = 1;
  rename.target_type = FileType::kDirectory;
  rename.dir2_ino = 5;
  rename.name2 = "to";
  rename.replaced_ino = 44;
  rename.replaced_nlink = 0;
  records.push_back(rename);

  std::vector<uint8_t> block = EncodeDirLogBlock(records, kBs);
  auto back = DecodeDirLogBlock(block);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].op, DirOp::kCreate);
  EXPECT_EQ((*back)[0].name, "newfile");
  EXPECT_EQ((*back)[1].op, DirOp::kRename);
  EXPECT_EQ((*back)[1].name2, "to");
  EXPECT_EQ((*back)[1].replaced_ino, 44u);
  EXPECT_EQ((*back)[1].replaced_nlink, 0u);
}

// Property sweep: random inodes and summaries round-trip for any content.
class RandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTrip, InodeAndSummary) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; iter++) {
    Inode ino;
    ino.ino = static_cast<InodeNum>(rng.NextU64());
    ino.type = rng.NextBool(0.5) ? FileType::kRegular : FileType::kDirectory;
    ino.nlink = static_cast<uint16_t>(rng.NextU64());
    ino.version = static_cast<uint32_t>(rng.NextU64());
    ino.size = rng.NextU64();
    ino.mtime = rng.NextU64();
    for (auto& d : ino.direct) {
      d = rng.NextU64();
    }
    ino.single_indirect = rng.NextU64();
    ino.double_indirect = rng.NextU64();
    std::vector<uint8_t> slot(kInodeSlotSize);
    ino.EncodeTo(slot);
    auto back = Inode::DecodeFrom(slot);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size, ino.size);
    EXPECT_EQ(back->direct[7], ino.direct[7]);

    SegmentSummary sum;
    sum.seq = rng.NextU64();
    sum.timestamp = rng.NextU64();
    sum.youngest_mtime = rng.NextU64();
    sum.payload_crc = static_cast<uint32_t>(rng.NextU64());
    size_t n = rng.NextBelow(100) + 1;
    for (size_t i = 0; i < n; i++) {
      sum.entries.push_back(
          SummaryEntry{static_cast<BlockKind>(1 + rng.NextBelow(7)),
                       static_cast<InodeNum>(rng.NextU64()), rng.NextU64(),
                       static_cast<uint32_t>(rng.NextU64())});
    }
    std::vector<uint8_t> block(kBs);
    sum.EncodeTo(block);
    auto sum_back = SegmentSummary::DecodeFrom(block);
    ASSERT_TRUE(sum_back.ok());
    ASSERT_EQ(sum_back->entries.size(), n);
    EXPECT_EQ(sum_back->entries[n - 1].fbn, sum.entries[n - 1].fbn);
    EXPECT_EQ(sum_back->seq, sum.seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace lfs
