// Unit tests for the disk substrate: MemDisk bounds checking, the Wren IV
// timing model (including its calibration to the spec-sheet average seek),
// SimDisk accounting, CrashDisk fault semantics, and FileDisk persistence.

#include <algorithm>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "src/disk/disk_model.h"
#include "src/disk/fault_disk.h"
#include "src/disk/file_disk.h"
#include "src/disk/mem_disk.h"
#include "src/disk/sim_disk.h"
#include "src/util/rng.h"

namespace lfs {
namespace {

TEST(MemDiskTest, ReadBackWhatWasWritten) {
  MemDisk disk(512, 100);
  std::vector<uint8_t> w(512 * 3, 0x5A);
  ASSERT_TRUE(disk.Write(10, 3, w).ok());
  std::vector<uint8_t> r(512 * 3);
  ASSERT_TRUE(disk.Read(10, 3, r).ok());
  EXPECT_EQ(w, r);
}

TEST(MemDiskTest, RejectsOutOfRange) {
  MemDisk disk(512, 100);
  std::vector<uint8_t> buf(512);
  EXPECT_EQ(disk.Read(100, 1, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.Read(99, 2, buf).code(), StatusCode::kOutOfRange);  // crosses end
  EXPECT_EQ(disk.Write(0, 1, std::vector<uint8_t>(100)).code(),
            StatusCode::kInvalidArgument);  // wrong buffer size
  EXPECT_EQ(disk.Read(0, 0, {}).code(), StatusCode::kInvalidArgument);
}

TEST(DiskModelTest, SequentialAccessPaysNoSeek) {
  DiskModelParams p = DiskModelParams::WrenIV();
  DiskModel model(p, 100 * 1024 * 1024);
  double first = model.Access(0, 4096);  // includes transfer + overhead
  double second = model.Access(4096, 4096);  // contiguous: no seek/rotation
  EXPECT_GT(first, 0);
  EXPECT_NEAR(second, p.per_request_overhead_sec + 4096 / p.transfer_bandwidth_bytes_per_sec,
              1e-9);
  double jump = model.Access(50 * 1024 * 1024, 4096);  // long seek
  EXPECT_GT(jump, second + p.track_to_track_seek_sec);
}

TEST(DiskModelTest, SeekCurveCalibratedToAverage) {
  // The seek curve is scaled so uniformly random head movements average to
  // the spec-sheet avg_seek_sec.
  DiskModelParams p = DiskModelParams::WrenIV();
  uint64_t size = 1000 * 1024 * 1024ull;
  DiskModel model(p, size);
  Rng rng(3);
  double sum = 0;
  const int n = 200000;
  uint64_t prev = 0;
  for (int i = 0; i < n; i++) {
    uint64_t pos = rng.NextBelow(size);
    sum += model.SeekTime(pos > prev ? pos - prev : prev - pos);
    prev = pos;
  }
  EXPECT_NEAR(sum / n, p.avg_seek_sec, p.avg_seek_sec * 0.05);
}

TEST(DiskModelTest, TransferTimeMatchesBandwidth) {
  DiskModelParams p = DiskModelParams::WrenIV();
  DiskModel model(p, 1 << 30);
  EXPECT_NEAR(model.TransferTime(static_cast<uint64_t>(p.transfer_bandwidth_bytes_per_sec)),
              1.0, 1e-9);
}

TEST(SimDiskTest, AccumulatesStats) {
  SimDisk disk(std::make_unique<MemDisk>(4096, 1000), DiskModelParams::WrenIV());
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(disk.Write(0, 1, buf).ok());
  ASSERT_TRUE(disk.Write(1, 1, buf).ok());   // sequential: no seek
  ASSERT_TRUE(disk.Write(500, 1, buf).ok()); // seek
  ASSERT_TRUE(disk.Read(0, 1, buf).ok());    // seek back
  const DiskStats& st = disk.stats();
  EXPECT_EQ(st.writes, 3u);
  EXPECT_EQ(st.reads, 1u);
  EXPECT_EQ(st.bytes_written, 3u * 4096);
  EXPECT_EQ(st.bytes_read, 4096u);
  EXPECT_EQ(st.seeks, 2u);
  EXPECT_GT(st.busy_sec, 0.0);
  EXPECT_GT(st.seek_sec, 0.0);
  EXPECT_LT(st.seek_sec, st.busy_sec);

  DiskStats snapshot = st;
  ASSERT_TRUE(disk.Read(1, 1, buf).ok());
  DiskStats delta = disk.stats() - snapshot;
  EXPECT_EQ(delta.reads, 1u);
  EXPECT_EQ(delta.writes, 0u);
}

TEST(SimDiskTest, BigSequentialIoBeatsManySmallOnes) {
  std::vector<uint8_t> buf(4096 * 256);
  SimDisk big(std::make_unique<MemDisk>(4096, 1024), DiskModelParams::WrenIV());
  ASSERT_TRUE(big.Write(0, 256, buf).ok());
  double big_time = big.stats().busy_sec;

  SimDisk small(std::make_unique<MemDisk>(4096, 1024), DiskModelParams::WrenIV());
  for (int i = 0; i < 256; i++) {
    ASSERT_TRUE(small.Write(i, 1, std::span<uint8_t>(buf).subspan(0, 4096)).ok());
  }
  double small_time = small.stats().busy_sec;
  // Same bytes, contiguous either way, but per-request overhead piles up —
  // the effect the LFS design exploits with whole-segment writes.
  EXPECT_GT(small_time, big_time * 1.5);
}

TEST(CrashDiskTest, DropsWritesAfterCrash) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> ones(512, 1);
  std::vector<uint8_t> twos(512, 2);
  ASSERT_TRUE(disk.Write(5, 1, ones).ok());
  disk.CrashNow();
  ASSERT_TRUE(disk.Write(5, 1, twos).ok());  // silently dropped
  EXPECT_EQ(disk.writes_dropped(), 1u);
  std::vector<uint8_t> r(512);
  ASSERT_TRUE(disk.Read(5, 1, r).ok());  // reads still work
  EXPECT_EQ(r, ones);
  disk.ClearCrash();
  ASSERT_TRUE(disk.Write(5, 1, twos).ok());
  ASSERT_TRUE(disk.Read(5, 1, r).ok());
  EXPECT_EQ(r, twos);
}

TEST(CrashDiskTest, TornWritePersistsPrefix) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> zeros(512 * 4, 0);
  ASSERT_TRUE(disk.Write(0, 4, zeros).ok());
  disk.CrashAfterWrites(0, /*torn_blocks=*/2);
  std::vector<uint8_t> ones(512 * 4, 1);
  ASSERT_TRUE(disk.Write(0, 4, ones).ok());  // torn after 2 blocks
  EXPECT_TRUE(disk.crashed());
  std::vector<uint8_t> r(512 * 4);
  ASSERT_TRUE(disk.Read(0, 4, r).ok());
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[512], 1);
  EXPECT_EQ(r[1024], 0);  // blocks 2,3 never hit the platter
  EXPECT_EQ(r[1536], 0);
}

TEST(CrashDiskTest, CountdownArmsFutureWrite) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  disk.CrashAfterWrites(2, 0);
  std::vector<uint8_t> buf(512, 7);
  ASSERT_TRUE(disk.Write(0, 1, buf).ok());
  ASSERT_TRUE(disk.Write(1, 1, buf).ok());
  EXPECT_FALSE(disk.crashed());
  ASSERT_TRUE(disk.Write(2, 1, buf).ok());  // the torn write (0 blocks kept)
  EXPECT_TRUE(disk.crashed());
  std::vector<uint8_t> r(512);
  ASSERT_TRUE(disk.Read(2, 1, r).ok());
  EXPECT_EQ(r[0], 0);
}

TEST(CrashDiskTest, FlushIsACrashPoint) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> ones(512, 1);
  std::vector<uint8_t> twos(512, 2);

  // Countdown of 1: the write consumes it, the flush is the crash point.
  disk.CrashAfterWrites(1, 0);
  ASSERT_TRUE(disk.Write(3, 1, ones).ok());
  EXPECT_FALSE(disk.crashed());
  ASSERT_TRUE(disk.Flush().ok());
  EXPECT_TRUE(disk.crashed());
  EXPECT_EQ(disk.flushes_seen(), 1u);

  // The write before the lost barrier still persisted (completed writes
  // reach the backing store; only the barrier itself is lost)...
  std::vector<uint8_t> r(512);
  ASSERT_TRUE(disk.Read(3, 1, r).ok());
  EXPECT_EQ(r, ones);
  // ...and post-crash writes are dropped as usual.
  ASSERT_TRUE(disk.Write(3, 1, twos).ok());
  ASSERT_TRUE(disk.Read(3, 1, r).ok());
  EXPECT_EQ(r, ones);

  // A flush also decrements a larger countdown, shifting the crash point.
  disk.ClearCrash();
  disk.CrashAfterWrites(2, 0);
  ASSERT_TRUE(disk.Flush().ok());   // countdown 2 -> 1
  ASSERT_TRUE(disk.Write(4, 1, ones).ok());  // countdown 1 -> 0
  EXPECT_FALSE(disk.crashed());
  ASSERT_TRUE(disk.Write(5, 1, twos).ok());  // crash point: torn (0 kept)
  EXPECT_TRUE(disk.crashed());
  ASSERT_TRUE(disk.Read(5, 1, r).ok());
  EXPECT_EQ(r[0], 0);
}

TEST(CrashDiskTest, RecordingJournalsEveryEdgeWithOpMarkers) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> ones(512, 1);
  ASSERT_TRUE(disk.Write(0, 1, ones).ok());  // before recording: not journaled
  disk.StartRecording();
  EXPECT_TRUE(disk.recording());
  disk.SetOpMarker(7);
  std::vector<uint8_t> twos(512 * 2, 2);
  ASSERT_TRUE(disk.Write(3, 2, twos).ok());
  ASSERT_TRUE(disk.Flush().ok());
  disk.SetOpMarker(8);
  ASSERT_TRUE(disk.Trim(10, 4).ok());
  std::vector<CrashEdge> edges = disk.TakeRecording();
  EXPECT_FALSE(disk.recording());
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].kind, CrashEdge::Kind::kWrite);
  EXPECT_EQ(edges[0].block, 3u);
  EXPECT_EQ(edges[0].count, 2u);
  EXPECT_EQ(edges[0].op, 7);
  EXPECT_EQ(edges[0].data, twos);
  EXPECT_EQ(edges[1].kind, CrashEdge::Kind::kFlush);
  EXPECT_EQ(edges[1].op, 7);
  EXPECT_EQ(edges[2].kind, CrashEdge::Kind::kTrim);
  EXPECT_EQ(edges[2].block, 10u);
  EXPECT_EQ(edges[2].count, 4u);
  EXPECT_EQ(edges[2].op, 8);
}

TEST(CrashDiskTest, ResetCountersZeroesTalliesButKeepsCrashState) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> buf(512, 5);
  ASSERT_TRUE(disk.Write(0, 1, buf).ok());
  ASSERT_TRUE(disk.Flush().ok());
  disk.CrashNow();
  ASSERT_TRUE(disk.Write(1, 1, buf).ok());  // dropped
  EXPECT_EQ(disk.writes_seen(), 2u);
  EXPECT_EQ(disk.flushes_seen(), 1u);
  EXPECT_EQ(disk.writes_dropped(), 1u);
  disk.ResetCounters();
  EXPECT_EQ(disk.writes_seen(), 0u);
  EXPECT_EQ(disk.flushes_seen(), 0u);
  EXPECT_EQ(disk.writes_dropped(), 0u);
  EXPECT_TRUE(disk.crashed());  // crash state survives the reset
}

TEST(CrashDiskTest, CaptureModeSweepsTornPrefixesWithoutRerunning) {
  CrashDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> zeros(512 * 3, 0);
  ASSERT_TRUE(disk.Write(0, 3, zeros).ok());
  disk.CrashAfterWritesCapture(0);
  std::vector<uint8_t> payload(512 * 3);
  for (int i = 0; i < 3; i++) {
    std::fill(payload.begin() + i * 512, payload.begin() + (i + 1) * 512,
              static_cast<uint8_t>(i + 1));
  }
  ASSERT_TRUE(disk.Write(0, 3, payload).ok());  // the captured crash point
  EXPECT_TRUE(disk.crashed());
  ASSERT_TRUE(disk.has_in_flight());
  EXPECT_EQ(disk.in_flight_block(), 0u);
  EXPECT_EQ(disk.in_flight_count(), 3u);

  // t = 0: nothing persisted yet.
  std::vector<uint8_t> r(512 * 3);
  ASSERT_TRUE(disk.Read(0, 3, r).ok());
  EXPECT_EQ(r, zeros);
  // Walk t = 1, 2, 3: each call extends the durable prefix by one block.
  for (uint64_t t = 1; t <= 3; t++) {
    ASSERT_TRUE(disk.ApplyTornPrefix(t).ok());
    ASSERT_TRUE(disk.Read(0, 3, r).ok());
    for (uint64_t b = 0; b < 3; b++) {
      EXPECT_EQ(r[b * 512], b < t ? static_cast<uint8_t>(b + 1) : 0)
          << "t=" << t << " block " << b;
    }
  }
}

TEST(FaultDiskTest, TransientReadFaultClearsAfterNAttempts) {
  FaultDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> w(512, 0xAB);
  ASSERT_TRUE(disk.Write(7, 1, w).ok());
  disk.AddTransientReadFault(7, /*fail_count=*/2);
  std::vector<uint8_t> r(512);
  EXPECT_EQ(disk.Read(7, 1, r).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.Read(7, 1, r).code(), StatusCode::kIoError);
  ASSERT_TRUE(disk.Read(7, 1, r).ok());  // third attempt succeeds
  EXPECT_EQ(r, w);
  EXPECT_EQ(disk.counters().transient_read_faults, 2u);
}

TEST(FaultDiskTest, LatentErrorPersistsUntilCleared) {
  FaultDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> buf(512, 1);
  ASSERT_TRUE(disk.Write(10, 1, buf).ok());
  disk.AddLatentError(10);
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(disk.Read(10, 1, buf).code(), StatusCode::kIoError);
  }
  EXPECT_EQ(disk.Write(10, 1, buf).code(), StatusCode::kIoError);
  // A multi-block I/O touching the bad block fails too.
  std::vector<uint8_t> big(512 * 4);
  EXPECT_EQ(disk.Read(8, 4, big).code(), StatusCode::kIoError);
  disk.ClearLatentError(10);
  EXPECT_TRUE(disk.Read(10, 1, buf).ok());
  EXPECT_GE(disk.counters().latent_read_faults, 4u);
  EXPECT_EQ(disk.counters().latent_write_faults, 1u);
}

TEST(FaultDiskTest, CorruptOnReadFlipsOneBit) {
  FaultDisk disk(std::make_unique<MemDisk>(512, 64));
  std::vector<uint8_t> w(512, 0x00);
  ASSERT_TRUE(disk.Write(5, 1, w).ok());
  disk.CorruptOnRead(5);
  std::vector<uint8_t> r(512);
  ASSERT_TRUE(disk.Read(5, 1, r).ok());  // read "succeeds" — silent corruption
  EXPECT_NE(r, w);
  int flipped = 0;
  for (size_t i = 0; i < r.size(); i++) {
    flipped += __builtin_popcount(static_cast<unsigned>(r[i] ^ w[i]));
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(disk.counters().corrupted_reads, 1u);
  // Rewriting the block heals it.
  ASSERT_TRUE(disk.Write(5, 1, w).ok());
  ASSERT_TRUE(disk.Read(5, 1, r).ok());
  EXPECT_EQ(r, w);
}

TEST(FaultDiskTest, ProbabilisticFaultsAreSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    FaultDisk disk(std::make_unique<MemDisk>(512, 64), seed);
    disk.SetTransientReadFaultRate(0.3);
    std::vector<uint8_t> buf(512);
    std::string pattern;
    for (int i = 0; i < 50; i++) {
      pattern += disk.Read(0, 1, buf).ok() ? '.' : 'x';
    }
    return pattern;
  };
  EXPECT_EQ(run(42), run(42));      // same seed, same fault schedule
  EXPECT_NE(run(42), run(43));      // different seed, different schedule
  EXPECT_NE(run(42).find('x'), std::string::npos);  // some faults fired
  EXPECT_NE(run(42).find('.'), std::string::npos);  // some reads survived
}

TEST(FileDiskTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/lfs_filedisk_test.img";
  std::remove(path.c_str());
  {
    auto disk = FileDisk::Open(path, 512, 128);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    std::vector<uint8_t> buf(512, 0xCD);
    ASSERT_TRUE((*disk)->Write(42, 1, buf).ok());
    ASSERT_TRUE((*disk)->Flush().ok());
  }
  {
    auto disk = FileDisk::Open(path, 512, 128);
    ASSERT_TRUE(disk.ok());
    std::vector<uint8_t> buf(512);
    ASSERT_TRUE((*disk)->Read(42, 1, buf).ok());
    EXPECT_EQ(buf[0], 0xCD);
    ASSERT_TRUE((*disk)->Read(43, 1, buf).ok());
    EXPECT_EQ(buf[0], 0);  // untouched blocks read as zeros
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lfs
