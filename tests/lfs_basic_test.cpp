// Basic end-to-end behaviour of LfsFileSystem: namespace operations, data
// I/O, persistence across clean unmount/remount.

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

class LfsBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = SmallConfig();
    disk_ = std::make_unique<MemDisk>(cfg_.block_size, 4096);  // 4 MB
    auto fs = LfsFileSystem::Mkfs(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  void Remount() {
    ASSERT_OK(fs_->Unmount());
    fs_.reset();
    auto fs = LfsFileSystem::Mount(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  LfsConfig cfg_;
  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<LfsFileSystem> fs_;
};

TEST_F(LfsBasicTest, MkfsCreatesEmptyRoot) {
  ASSERT_OK_AND_ASSIGN(auto entries, fs_->ReadDir("/"));
  EXPECT_TRUE(entries.empty());
  ASSERT_OK_AND_ASSIGN(FileStat st, fs_->Stat(kRootInode));
  EXPECT_EQ(st.type, FileType::kDirectory);
}

TEST_F(LfsBasicTest, CreateWriteReadBack) {
  std::vector<uint8_t> content = TestContent(1, 3000);
  ASSERT_OK(fs_->WriteFile("/hello", content));
  ASSERT_OK_AND_ASSIGN(auto read, fs_->ReadFile("/hello"));
  EXPECT_EQ(read, content);
}

TEST_F(LfsBasicTest, CreateFailsOnDuplicate) {
  ASSERT_OK(fs_->Create("/a").status());
  Result<InodeNum> dup = fs_->Create("/a");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(LfsBasicTest, LookupMissingFails) {
  Result<InodeNum> r = fs_->Lookup("/nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(LfsBasicTest, NestedDirectories) {
  ASSERT_OK(fs_->Mkdir("/a"));
  ASSERT_OK(fs_->Mkdir("/a/b"));
  ASSERT_OK(fs_->Mkdir("/a/b/c"));
  ASSERT_OK(fs_->WriteFile("/a/b/c/f", TestContent(2, 500)));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/a/b/c/f"));
  EXPECT_EQ(data, TestContent(2, 500));
  ASSERT_OK_AND_ASSIGN(auto entries, fs_->ReadDir("/a/b"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "c");
  EXPECT_EQ(entries[0].type, FileType::kDirectory);
}

TEST_F(LfsBasicTest, UnlinkRemovesFile) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(3, 100)));
  ASSERT_OK(fs_->Unlink("/f"));
  EXPECT_FALSE(fs_->Exists("/f"));
  EXPECT_EQ(fs_->Unlink("/f").code(), StatusCode::kNotFound);
}

TEST_F(LfsBasicTest, RmdirRequiresEmpty) {
  ASSERT_OK(fs_->Mkdir("/d"));
  ASSERT_OK(fs_->WriteFile("/d/f", TestContent(4, 10)));
  EXPECT_EQ(fs_->Rmdir("/d").code(), StatusCode::kNotEmpty);
  ASSERT_OK(fs_->Unlink("/d/f"));
  ASSERT_OK(fs_->Rmdir("/d"));
  EXPECT_FALSE(fs_->Exists("/d"));
}

TEST_F(LfsBasicTest, HardLinksShareContent) {
  ASSERT_OK(fs_->WriteFile("/orig", TestContent(5, 64)));
  ASSERT_OK(fs_->Link("/orig", "/alias"));
  ASSERT_OK_AND_ASSIGN(FileStat st, fs_->StatPath("/alias"));
  EXPECT_EQ(st.nlink, 2u);
  ASSERT_OK(fs_->Unlink("/orig"));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/alias"));
  EXPECT_EQ(data, TestContent(5, 64));
}

TEST_F(LfsBasicTest, RenameMovesAndReplaces) {
  ASSERT_OK(fs_->WriteFile("/a", TestContent(6, 32)));
  ASSERT_OK(fs_->WriteFile("/b", TestContent(7, 32)));
  ASSERT_OK(fs_->Rename("/a", "/b"));  // replaces /b
  EXPECT_FALSE(fs_->Exists("/a"));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/b"));
  EXPECT_EQ(data, TestContent(6, 32));
}

TEST_F(LfsBasicTest, RenameAcrossDirectories) {
  ASSERT_OK(fs_->Mkdir("/src"));
  ASSERT_OK(fs_->Mkdir("/dst"));
  ASSERT_OK(fs_->WriteFile("/src/f", TestContent(8, 128)));
  ASSERT_OK(fs_->Rename("/src/f", "/dst/g"));
  EXPECT_FALSE(fs_->Exists("/src/f"));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/dst/g"));
  EXPECT_EQ(data, TestContent(8, 128));
}

TEST_F(LfsBasicTest, RenameDirIntoItselfRejected) {
  ASSERT_OK(fs_->Mkdir("/d"));
  ASSERT_OK(fs_->Mkdir("/d/e"));
  EXPECT_EQ(fs_->Rename("/d", "/d/e/x").code(), StatusCode::kInvalidArgument);
}

TEST_F(LfsBasicTest, OverwriteInPlace) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(9, 5000)));
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/f"));
  std::vector<uint8_t> patch = TestContent(10, 100);
  ASSERT_OK(fs_->WriteAt(ino, 2500, patch));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f"));
  std::vector<uint8_t> expect = TestContent(9, 5000);
  std::copy(patch.begin(), patch.end(), expect.begin() + 2500);
  EXPECT_EQ(data, expect);
}

TEST_F(LfsBasicTest, SparseFileReadsZeros) {
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Create("/sparse"));
  std::vector<uint8_t> tail = TestContent(11, 10);
  ASSERT_OK(fs_->WriteAt(ino, 50000, tail));
  ASSERT_OK_AND_ASSIGN(FileStat st, fs_->Stat(ino));
  EXPECT_EQ(st.size, 50010u);
  std::vector<uint8_t> mid(100);
  ASSERT_OK_AND_ASSIGN(uint64_t n, fs_->ReadAt(ino, 10000, mid));
  EXPECT_EQ(n, 100u);
  EXPECT_TRUE(std::all_of(mid.begin(), mid.end(), [](uint8_t b) { return b == 0; }));
  std::vector<uint8_t> end(10);
  ASSERT_OK_AND_ASSIGN(n, fs_->ReadAt(ino, 50000, end));
  EXPECT_EQ(end, tail);
}

TEST_F(LfsBasicTest, TruncateShrinkAndGrow) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(12, 4000)));
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/f"));
  ASSERT_OK(fs_->Truncate(ino, 1500));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f"));
  std::vector<uint8_t> expect = TestContent(12, 4000);
  expect.resize(1500);
  EXPECT_EQ(data, expect);
  ASSERT_OK(fs_->Truncate(ino, 3000));
  ASSERT_OK_AND_ASSIGN(data, fs_->ReadFile("/f"));
  expect.resize(3000, 0);
  EXPECT_EQ(data, expect);
}

TEST_F(LfsBasicTest, TruncateToZeroBumpsVersion) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(13, 2000)));
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/f"));
  uint32_t v0 = fs_->inode_map().Get(ino).version;
  ASSERT_OK(fs_->Truncate(ino, 0));
  EXPECT_GT(fs_->inode_map().Get(ino).version, v0);
}

TEST_F(LfsBasicTest, PersistsAcrossRemount) {
  ASSERT_OK(fs_->Mkdir("/dir"));
  ASSERT_OK(fs_->WriteFile("/dir/file1", TestContent(14, 2345)));
  ASSERT_OK(fs_->WriteFile("/file2", TestContent(15, 100)));
  Remount();
  ASSERT_OK_AND_ASSIGN(auto d1, fs_->ReadFile("/dir/file1"));
  EXPECT_EQ(d1, TestContent(14, 2345));
  ASSERT_OK_AND_ASSIGN(auto d2, fs_->ReadFile("/file2"));
  EXPECT_EQ(d2, TestContent(15, 100));
}

TEST_F(LfsBasicTest, ManySmallFilesSurviveRemount) {
  for (int i = 0; i < 200; i++) {
    ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 100 + i)));
  }
  Remount();
  for (int i = 0; i < 200; i++) {
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(i, 100 + i)) << i;
  }
}

TEST_F(LfsBasicTest, LargeFileUsesIndirectBlocks) {
  // 1-KB blocks, 12 direct => anything over 12 KB exercises indirects; over
  // 12 + 128 blocks exercises the double indirect.
  std::vector<uint8_t> big = TestContent(16, 400 * 1024);
  ASSERT_OK(fs_->WriteFile("/big", big));
  Remount();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/big"));
  EXPECT_EQ(data, big);
}

TEST_F(LfsBasicTest, DeepPathsAndLongNames) {
  std::string name(255, 'x');
  ASSERT_OK(fs_->WriteFile("/" + name, TestContent(17, 10)));
  EXPECT_TRUE(fs_->Exists("/" + name));
  std::string too_long(256, 'y');
  EXPECT_EQ(fs_->Create("/" + too_long).status().code(), StatusCode::kNameTooLong);
}

TEST_F(LfsBasicTest, WriteToDirectoryRejected) {
  ASSERT_OK(fs_->Mkdir("/d"));
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/d"));
  std::vector<uint8_t> data{1, 2, 3};
  EXPECT_EQ(fs_->WriteAt(ino, 0, data).code(), StatusCode::kIsADirectory);
}

TEST_F(LfsBasicTest, ReadDirListsSorted) {
  ASSERT_OK(fs_->Create("/c").status());
  ASSERT_OK(fs_->Create("/a").status());
  ASSERT_OK(fs_->Create("/b").status());
  ASSERT_OK_AND_ASSIGN(auto entries, fs_->ReadDir("/"));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[1].name, "b");
  EXPECT_EQ(entries[2].name, "c");
}

TEST_F(LfsBasicTest, ManyEntriesInOneDirectory) {
  for (int i = 0; i < 500; i++) {
    ASSERT_OK(fs_->Create("/entry" + std::to_string(i)).status());
  }
  ASSERT_OK_AND_ASSIGN(auto entries, fs_->ReadDir("/"));
  EXPECT_EQ(entries.size(), 500u);
  Remount();
  ASSERT_OK_AND_ASSIGN(entries, fs_->ReadDir("/"));
  EXPECT_EQ(entries.size(), 500u);
  EXPECT_TRUE(fs_->Exists("/entry499"));
}

TEST_F(LfsBasicTest, ReadOnlyMountRefusesMutations) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(50, 2000)));
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  MountOptions opts;
  opts.read_only = true;
  auto fs = LfsFileSystem::Mount(disk_.get(), cfg_, opts);
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  // Reads work.
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f"));
  EXPECT_EQ(data, TestContent(50, 2000));
  // Every mutation is refused with kReadOnly.
  EXPECT_EQ(fs_->Create("/new").status().code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_->Mkdir("/d").code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_->Unlink("/f").code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_->Rename("/f", "/g").code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_->Link("/f", "/h").code(), StatusCode::kReadOnly);
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/f"));
  std::vector<uint8_t> byte{1};
  EXPECT_EQ(fs_->WriteAt(ino, 0, byte).code(), StatusCode::kReadOnly);
  EXPECT_EQ(fs_->Truncate(ino, 0).code(), StatusCode::kReadOnly);
  // Sync/Unmount are harmless no-ops.
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  // A read-write remount sees the untouched image.
  fs_ = std::move(LfsFileSystem::Mount(disk_.get(), cfg_)).value();
  ASSERT_OK_AND_ASSIGN(data, fs_->ReadFile("/f"));
  EXPECT_EQ(data, TestContent(50, 2000));
}

TEST_F(LfsBasicTest, ManyInodesSpanMultipleImapChunks) {
  // SmallConfig: 1-KB blocks -> 42 imap entries per chunk; 150 files span
  // four chunks, all of which must persist and reload.
  for (int i = 0; i < 150; i++) {
    ASSERT_OK(fs_->Create("/i" + std::to_string(i)).status());
  }
  EXPECT_GT(fs_->inode_map().chunk_of(151), 2u);
  Remount();
  for (int i = 0; i < 150; i++) {
    EXPECT_TRUE(fs_->Exists("/i" + std::to_string(i))) << i;
  }
  EXPECT_EQ(fs_->inode_map().allocated_count(), 151u);  // +1 for the root
}

TEST_F(LfsBasicTest, NoSpaceSurfacesCleanly) {
  // 4-MB disk; write until it refuses, then verify existing data intact.
  std::vector<uint8_t> chunk = TestContent(18, 64 * 1024);
  ASSERT_OK(fs_->WriteFile("/keep", TestContent(19, 1000)));
  Status st = OkStatus();
  int i = 0;
  while (st.ok() && i < 200) {
    st = fs_->WriteFile("/fill" + std::to_string(i++), chunk);
  }
  EXPECT_EQ(st.code(), StatusCode::kNoSpace);
  ASSERT_OK_AND_ASSIGN(auto keep, fs_->ReadFile("/keep"));
  EXPECT_EQ(keep, TestContent(19, 1000));
  // Deleting should make room again.
  for (int j = 0; j < i - 1; j++) {
    ASSERT_OK(fs_->Unlink("/fill" + std::to_string(j)));
  }
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->WriteFile("/after", TestContent(20, 1000)));
}

}  // namespace
}  // namespace lfs
