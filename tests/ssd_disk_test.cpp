// SsdDisk model tests: data integrity, deterministic timing, channel
// parallelism, trim semantics, and the FTL's erase/write-amplification
// accounting.

#include <vector>

#include <gtest/gtest.h>

#include "src/disk/ssd_disk.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

constexpr uint32_t kPage = 512;

SsdModelParams TinyParams() {
  SsdModelParams p;
  p.channels = 2;
  p.erase_block_pages = 8;
  p.over_provision = 0.25;
  p.gc_reserve_erase_blocks = 2;
  return p;
}

std::vector<uint8_t> Fill(uint8_t v, size_t n = kPage) {
  return std::vector<uint8_t>(n, v);
}

TEST(SsdDiskTest, ReadBackWhatWasWritten) {
  SsdDisk ssd(kPage, 64, TinyParams());
  ASSERT_OK(ssd.Write(3, 1, Fill(0xAB)));
  ASSERT_OK(ssd.Write(5, 1, Fill(0xCD)));
  std::vector<uint8_t> out(kPage);
  ASSERT_OK(ssd.Read(3, 1, out));
  EXPECT_EQ(out, Fill(0xAB));
  ASSERT_OK(ssd.Read(5, 1, out));
  EXPECT_EQ(out, Fill(0xCD));
}

TEST(SsdDiskTest, UnwrittenPagesReadAsZeros) {
  SsdDisk ssd(kPage, 64, TinyParams());
  std::vector<uint8_t> out(kPage, 0xFF);
  ASSERT_OK(ssd.Read(10, 1, out));
  EXPECT_EQ(out, Fill(0x00));
}

TEST(SsdDiskTest, OutOfRangeRejected) {
  SsdDisk ssd(kPage, 64, TinyParams());
  std::vector<uint8_t> buf(kPage);
  std::vector<uint8_t> two(2 * kPage);
  EXPECT_FALSE(ssd.Write(64, 1, buf).ok());
  EXPECT_FALSE(ssd.Read(63, 2, two).ok());
  EXPECT_FALSE(ssd.Trim(60, 5).ok());
}

TEST(SsdDiskTest, SinglePageWriteTiming) {
  SsdModelParams p = TinyParams();
  SsdDisk ssd(kPage, 64, p);
  ASSERT_OK(ssd.Write(0, 1, Fill(1)));
  // One request: per-request overhead + one page program. No seek, no
  // rotation — the flash-era contrast with DiskModel.
  EXPECT_DOUBLE_EQ(ssd.ModeledTime(), p.per_request_overhead_sec + p.program_page_sec);
  std::vector<uint8_t> out(kPage);
  ASSERT_OK(ssd.Read(0, 1, out));
  EXPECT_DOUBLE_EQ(ssd.ModeledTime(), 2 * p.per_request_overhead_sec +
                                          p.program_page_sec + p.read_page_sec);
}

TEST(SsdDiskTest, TimingIsDeterministic) {
  auto run = [] {
    SsdDisk ssd(kPage, 256, TinyParams());
    for (int pass = 0; pass < 6; pass++) {
      for (uint64_t b = 0; b < 200; b++) {
        EXPECT_TRUE(ssd.Write(b, 1, Fill(static_cast<uint8_t>(pass))).ok());
      }
    }
    return ssd.ModeledTime();
  };
  double t1 = run();
  double t2 = run();
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
}

TEST(SsdDiskTest, ChannelParallelismSpeedsUpLargeRequests) {
  // Same workload, 1 channel vs 4: pages stripe across erase blocks on
  // different channels, so the 4-channel device finishes sooner.
  SsdModelParams p1 = TinyParams();
  p1.channels = 1;
  SsdModelParams p4 = TinyParams();
  p4.channels = 4;
  SsdDisk one(kPage, 256, p1);
  SsdDisk four(kPage, 256, p4);
  std::vector<uint8_t> big(64 * kPage, 0x5A);
  ASSERT_OK(one.Write(0, 64, big));
  ASSERT_OK(four.Write(0, 64, big));
  EXPECT_LT(four.ModeledTime(), one.ModeledTime());
  // Identical data either way.
  std::vector<uint8_t> a(64 * kPage), b(64 * kPage);
  ASSERT_OK(one.Read(0, 64, a));
  ASSERT_OK(four.Read(0, 64, b));
  EXPECT_EQ(a, b);
}

TEST(SsdDiskTest, OverwritesTriggerGcAndWriteAmplification) {
  SsdDisk ssd(kPage, 128, TinyParams());
  // Fill the device, then overwrite every other page repeatedly: each
  // original erase block keeps half its pages valid, so the FTL must
  // relocate those survivors when it erases.
  for (uint64_t b = 0; b < 128; b++) {
    ASSERT_OK(ssd.Write(b, 1, Fill(static_cast<uint8_t>(b))));
  }
  for (int pass = 0; pass < 8; pass++) {
    for (uint64_t b = 0; b < 128; b += 2) {
      ASSERT_OK(ssd.Write(b, 1, Fill(static_cast<uint8_t>(pass + 1))));
    }
  }
  SsdStats s = ssd.stats();
  EXPECT_GT(s.erases, 0u);
  EXPECT_GT(s.pages_programmed_gc, 0u);
  EXPECT_GT(s.WriteAmplification(), 1.0);
  EXPECT_GT(ssd.max_erase_count(), 0u);
  EXPECT_LE(ssd.min_erase_count(), ssd.max_erase_count());
  // The never-overwritten (odd) pages survived every relocation.
  std::vector<uint8_t> out(kPage);
  for (uint64_t b = 1; b < 128; b += 16) {
    ASSERT_OK(ssd.Read(b, 1, out));
    EXPECT_EQ(out, Fill(static_cast<uint8_t>(b))) << "block " << b;
  }
}

TEST(SsdDiskTest, TrimUnmapsAndReadsZeros) {
  SsdDisk ssd(kPage, 64, TinyParams());
  ASSERT_OK(ssd.Write(7, 2, Fill(0x77, 2 * kPage)));
  EXPECT_EQ(ssd.mapped_pages(), 2u);
  ASSERT_OK(ssd.Trim(7, 2));
  EXPECT_EQ(ssd.mapped_pages(), 0u);
  EXPECT_EQ(ssd.stats().pages_trimmed, 2u);
  std::vector<uint8_t> out(kPage, 0xFF);
  ASSERT_OK(ssd.Read(7, 1, out));
  EXPECT_EQ(out, Fill(0x00));
  // Trimming never-written blocks is a no-op, not an error.
  ASSERT_OK(ssd.Trim(20, 4));
  EXPECT_EQ(ssd.stats().pages_trimmed, 2u);
}

TEST(SsdDiskTest, TrimReducesGcRelocationWork) {
  // Two identical devices and overwrite workloads; one trims dead data
  // before rewriting. The trimming device's GC relocates fewer pages.
  auto churn = [](SsdDisk& ssd, bool trim) {
    for (uint64_t b = 0; b < 128; b++) {
      ASSERT_OK(ssd.Write(b, 1, Fill(1)));
    }
    for (int pass = 0; pass < 6; pass++) {
      if (trim) {
        ASSERT_OK(ssd.Trim(0, 96));
      }
      for (uint64_t b = 0; b < 96; b++) {
        ASSERT_OK(ssd.Write(b, 1, Fill(static_cast<uint8_t>(pass + 2))));
      }
    }
  };
  SsdDisk plain(kPage, 128, TinyParams());
  SsdDisk trimmed(kPage, 128, TinyParams());
  churn(plain, false);
  churn(trimmed, true);
  EXPECT_LE(trimmed.stats().pages_programmed_gc, plain.stats().pages_programmed_gc);
  EXPECT_LE(trimmed.stats().WriteAmplification(), plain.stats().WriteAmplification());
}

TEST(SsdDiskTest, LfsRunsOnSsdAndTrimsFreedSegments) {
  // End-to-end TRIM plumbing: LFS on the flash backend, churn that frees
  // segments, checkpoint-gated trims reaching the device.
  LfsConfig cfg = ::lfs::testing::SmallConfig();
  SsdDisk ssd(cfg.block_size, 8192, TinyParams());
  ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&ssd, cfg));
  for (int round = 0; round < 8; round++) {
    for (int i = 0; i < 12; i++) {
      // WriteFile cannot clobber an existing path, so delete-then-recreate;
      // the unlink churn is what frees whole segments for TRIM anyway.
      std::string path = "/f" + std::to_string(i);
      if (fs->Exists(path)) {
        ASSERT_OK(fs->Unlink(path));
      }
      ASSERT_OK(fs->WriteFile(path, ::lfs::testing::TestContent(round * 16 + i, 3000)));
    }
    ASSERT_OK(fs->Sync());
  }
  ASSERT_OK(fs->ForceClean().status());
  ASSERT_OK(fs->Sync());
  EXPECT_GT(fs->stats().segments_trimmed, 0u);
  EXPECT_GT(ssd.stats().trims, 0u);
  EXPECT_GT(ssd.stats().pages_trimmed, 0u);
  // Data integrity on flash.
  for (int i = 0; i < 12; i++) {
    ASSERT_OK_AND_ASSIGN(auto data, fs->ReadFile("/f" + std::to_string(i)));
    EXPECT_EQ(data, ::lfs::testing::TestContent(7 * 16 + i, 3000));
  }
  ASSERT_OK(fs->Unmount());
}

TEST(SsdDiskTest, EraseCountsSpreadAcrossBlocks) {
  SsdDisk ssd(kPage, 64, TinyParams());
  for (int pass = 0; pass < 20; pass++) {
    for (uint64_t b = 0; b < 64; b++) {
      ASSERT_OK(ssd.Write(b, 1, Fill(static_cast<uint8_t>(pass))));
    }
  }
  uint64_t total = 0;
  for (uint32_t eb = 0; eb < ssd.erase_block_count(); eb++) {
    total += ssd.erase_count(eb);
  }
  EXPECT_EQ(total, ssd.stats().erases);
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace lfs
