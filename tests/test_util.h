// Shared helpers for the test suite: tiny-geometry filesystems and
// deterministic content generation/verification.

#ifndef LFS_TESTS_TEST_UTIL_H_
#define LFS_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/disk/mem_disk.h"
#include "src/lfs/lfs.h"
#include "src/util/rng.h"

namespace lfs::testing {

// A small LFS configuration that keeps tests fast: 1-KB blocks, 16-block
// (16-KB) segments, eager cleaning thresholds.
inline LfsConfig SmallConfig() {
  LfsConfig cfg;
  cfg.block_size = 1024;
  cfg.segment_blocks = 16;
  cfg.max_inodes = 2048;
  cfg.clean_lo = 4;
  cfg.clean_hi = 6;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 3;
  cfg.write_buffer_blocks = 16;
  return cfg;
}

// Deterministic file contents derived from a seed; distinct per (seed, size).
inline std::vector<uint8_t> TestContent(uint64_t seed, size_t size) {
  std::vector<uint8_t> data(size);
  Rng rng(seed * 1000003 + size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return data;
}

#define ASSERT_OK(expr)                                           \
  do {                                                            \
    ::lfs::Status _st = (expr);                                   \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

#define EXPECT_OK(expr)                                           \
  do {                                                            \
    ::lfs::Status _st = (expr);                                   \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                           \
  ASSERT_OK_AND_ASSIGN_IMPL_(LFS_RESULT_CONCAT_(_t_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)                \
  auto tmp = (expr);                                              \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();               \
  lhs = std::move(tmp).value()

}  // namespace lfs::testing

#endif  // LFS_TESTS_TEST_UTIL_H_
