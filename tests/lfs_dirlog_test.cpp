// Directory-operation-log replay matrix (Section 4.2).
//
// For each namespace operation we crash at EVERY device-write boundary
// between the operation and its durability, remount, and assert the
// operation-specific atomicity contract:
//
//   create:          the file is absent, or present with nlink 1 (never a
//                    dangling entry — "the directory entry will be removed");
//   link:            nlink always equals the number of directory entries;
//   unlink:          the name is gone or fully present; never half;
//   rename:          exactly one of the two names resolves to the file;
//   rename-replace:  the target name resolves to either the old or the new
//                    file's contents, never a mix, and the source name is
//                    consistent with whichever state survived.

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

struct Rig {
  LfsConfig cfg = SmallConfig();
  std::unique_ptr<CrashDisk> disk;
  std::unique_ptr<LfsFileSystem> fs;

  Rig() {
    disk = std::make_unique<CrashDisk>(std::make_unique<MemDisk>(cfg.block_size, 8192));
    fs = std::move(LfsFileSystem::Mkfs(disk.get(), cfg)).value();
  }

  void Remount() {
    fs.reset();
    disk->ClearCrash();
    fs = std::move(LfsFileSystem::Mount(disk.get(), cfg)).value();
  }

  // Counts directory entries across the whole tree that point at `ino`.
  uint32_t CountRefs(InodeNum ino) {
    uint32_t refs = 0;
    std::vector<std::string> dirs = {"/"};
    while (!dirs.empty()) {
      std::string d = dirs.back();
      dirs.pop_back();
      auto entries = fs->ReadDir(d);
      if (!entries.ok()) {
        continue;
      }
      for (const DirEntry& e : *entries) {
        if (e.ino == ino) {
          refs++;
        }
        if (e.type == FileType::kDirectory) {
          dirs.push_back(d == "/" ? "/" + e.name : d + "/" + e.name);
        }
      }
    }
    return refs;
  }
};

// Runs `setup` (made durable), then `op` + a flush-forcing filler write with
// a crash armed after `crash_at` writes; remounts and calls `verify`.
// Returns false once crash_at exceeds the window (sweep complete).
bool CrashPoint(int crash_at, const std::function<void(Rig&)>& setup,
                const std::function<void(Rig&)>& op,
                const std::function<void(Rig&)>& verify) {
  Rig rig;
  setup(rig);
  EXPECT_TRUE(rig.fs->Sync().ok());
  uint64_t before = rig.disk->writes_seen();
  rig.disk->CrashAfterWrites(crash_at, /*torn_blocks=*/1);
  op(rig);
  // Filler pushes the dirlog + directory blocks + inodes into the log.
  (void)rig.fs->WriteFile("/filler", TestContent(999, 40 * 1024));
  (void)rig.fs->Sync();
  bool window_active = rig.disk->crashed();
  uint64_t window = rig.disk->writes_seen() - before;
  rig.Remount();
  verify(rig);
  // Keep sweeping while the armed crash actually fired inside the window.
  return window_active && crash_at < static_cast<int>(window);
}

void Sweep(const std::function<void(Rig&)>& setup, const std::function<void(Rig&)>& op,
           const std::function<void(Rig&)>& verify) {
  for (int crash_at = 0; crash_at < 64; crash_at++) {
    if (!CrashPoint(crash_at, setup, op, verify)) {
      break;
    }
  }
}

TEST(DirLogMatrix, CreateIsAtomic) {
  Sweep([](Rig&) {},
        [](Rig& rig) { (void)rig.fs->WriteFile("/new", TestContent(1, 3000)); },
        [](Rig& rig) {
          if (!rig.fs->Exists("/new")) {
            return;  // undone: fine
          }
          auto st = rig.fs->StatPath("/new");
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(st->nlink, 1u);
          EXPECT_EQ(rig.CountRefs(st->ino), 1u);
          auto data = rig.fs->ReadFile("/new");
          ASSERT_TRUE(data.ok());  // never a dangling entry
        });
}

TEST(DirLogMatrix, MkdirIsAtomic) {
  Sweep([](Rig&) {},
        [](Rig& rig) { (void)rig.fs->Mkdir("/dir"); },
        [](Rig& rig) {
          if (!rig.fs->Exists("/dir")) {
            return;
          }
          auto entries = rig.fs->ReadDir("/dir");
          ASSERT_TRUE(entries.ok());  // a surviving directory must be usable
          EXPECT_TRUE(entries->empty());
        });
}

TEST(DirLogMatrix, LinkKeepsRefcountConsistent) {
  Sweep([](Rig& rig) { ASSERT_TRUE(rig.fs->WriteFile("/orig", TestContent(2, 2000)).ok()); },
        [](Rig& rig) { (void)rig.fs->Link("/orig", "/alias"); },
        [](Rig& rig) {
          ASSERT_TRUE(rig.fs->Exists("/orig"));
          auto st = rig.fs->StatPath("/orig");
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(st->nlink, rig.CountRefs(st->ino));
          EXPECT_EQ(st->nlink, rig.fs->Exists("/alias") ? 2u : 1u);
        });
}

TEST(DirLogMatrix, UnlinkIsAtomic) {
  Sweep([](Rig& rig) { ASSERT_TRUE(rig.fs->WriteFile("/doomed", TestContent(3, 5000)).ok()); },
        [](Rig& rig) { (void)rig.fs->Unlink("/doomed"); },
        [](Rig& rig) {
          if (!rig.fs->Exists("/doomed")) {
            return;  // deletion recovered
          }
          auto data = rig.fs->ReadFile("/doomed");
          ASSERT_TRUE(data.ok());
          EXPECT_EQ(*data, TestContent(3, 5000));  // or fully intact
        });
}

TEST(DirLogMatrix, RenameMovesExactlyOneName) {
  Sweep([](Rig& rig) { ASSERT_TRUE(rig.fs->WriteFile("/from", TestContent(4, 4000)).ok()); },
        [](Rig& rig) { (void)rig.fs->Rename("/from", "/to"); },
        [](Rig& rig) {
          bool from = rig.fs->Exists("/from");
          bool to = rig.fs->Exists("/to");
          EXPECT_TRUE(from != to) << "rename must never lose or duplicate the file";
          auto data = rig.fs->ReadFile(from ? "/from" : "/to");
          ASSERT_TRUE(data.ok());
          EXPECT_EQ(*data, TestContent(4, 4000));
        });
}

TEST(DirLogMatrix, RenameReplaceNeverMixes) {
  Sweep(
      [](Rig& rig) {
        ASSERT_TRUE(rig.fs->WriteFile("/from", TestContent(5, 4000)).ok());
        ASSERT_TRUE(rig.fs->WriteFile("/to", TestContent(6, 4000)).ok());
      },
      [](Rig& rig) { (void)rig.fs->Rename("/from", "/to"); },
      [](Rig& rig) {
        ASSERT_TRUE(rig.fs->Exists("/to"));
        auto data = rig.fs->ReadFile("/to");
        ASSERT_TRUE(data.ok());
        bool is_new = *data == TestContent(5, 4000);
        bool is_old = *data == TestContent(6, 4000);
        EXPECT_TRUE(is_new || is_old) << "/to must hold one intact version";
        if (is_new) {
          EXPECT_FALSE(rig.fs->Exists("/from")) << "moved file must not appear twice";
        } else {
          // Old state survived entirely: /from must still be intact.
          ASSERT_TRUE(rig.fs->Exists("/from"));
          auto from = rig.fs->ReadFile("/from");
          ASSERT_TRUE(from.ok());
          EXPECT_EQ(*from, TestContent(5, 4000));
        }
      });
}

TEST(DirLogMatrix, RmdirIsAtomic) {
  Sweep([](Rig& rig) { ASSERT_TRUE(rig.fs->Mkdir("/d").ok()); },
        [](Rig& rig) { (void)rig.fs->Rmdir("/d"); },
        [](Rig& rig) {
          if (rig.fs->Exists("/d")) {
            EXPECT_TRUE(rig.fs->ReadDir("/d").ok());
          }
        });
}

}  // namespace
}  // namespace lfs
