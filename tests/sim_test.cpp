// Tests for the Section 3.5 cleaning-policy simulator. Beyond mechanical
// invariants, these check the paper's three qualitative findings:
//   (1) variance in segment utilization makes measured write cost beat the
//       no-variance formula (Figure 4 vs Figure 3);
//   (2) under greedy cleaning, locality makes things WORSE, not better
//       (Figure 4's surprising result);
//   (3) cost-benefit + age sort beats greedy under locality and produces a
//       bimodal segment distribution (Figures 6, 7).

#include <gtest/gtest.h>

#include "src/sim/sim.h"

namespace lfs::sim {
namespace {

SimConfig BaseConfig() {
  SimConfig cfg;
  cfg.nsegments = 100;
  cfg.blocks_per_segment = 64;
  cfg.warmup_overwrites_per_file = 60;
  cfg.measure_overwrites_per_file = 40;
  cfg.seed = 12345;
  return cfg;
}

TEST(FormulaTest, MatchesPaperEquation1) {
  EXPECT_DOUBLE_EQ(FormulaWriteCost(0.0), 1.0);
  EXPECT_DOUBLE_EQ(FormulaWriteCost(0.5), 4.0);
  EXPECT_DOUBLE_EQ(FormulaWriteCost(0.8), 10.0);
  EXPECT_NEAR(FormulaWriteCost(0.9), 20.0, 1e-9);
}

TEST(SimTest, ConservationOfFiles) {
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.5;
  CleaningSimulator sim(cfg);
  for (int i = 0; i < 10000; i++) {
    sim.Step();
  }
  // Live blocks on "disk" always equals the number of files.
  EXPECT_NEAR(sim.ActualDiskUtilization(),
              static_cast<double>(sim.nfiles()) / (100.0 * 64.0), 1e-9);
}

TEST(SimTest, WriteCostAtLeastOne) {
  for (double util : {0.2, 0.5, 0.8}) {
    SimConfig cfg = BaseConfig();
    cfg.disk_utilization = util;
    SimResult r = CleaningSimulator(cfg).Run();
    EXPECT_GE(r.write_cost, 1.0) << util;
  }
}

TEST(SimTest, WriteCostGrowsWithUtilization) {
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.3;
  double low = CleaningSimulator(cfg).Run().write_cost;
  cfg.disk_utilization = 0.85;
  double high = CleaningSimulator(cfg).Run().write_cost;
  EXPECT_GT(high, low);
}

TEST(SimTest, VarianceBeatsNoVarianceFormula) {
  // Paper: "Even with uniform random access patterns, the variance in
  // segment utilization allows a substantially lower write cost than would
  // be predicted from the overall disk capacity utilization and formula (1).
  // For example, at 75% overall disk capacity utilization, the segments
  // cleaned have an average utilization of only 55%."
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.75;
  SimResult r = CleaningSimulator(cfg).Run();
  EXPECT_LT(r.write_cost, FormulaWriteCost(0.75));
  EXPECT_LT(r.avg_cleaned_utilization, 0.70);
  EXPECT_GT(r.avg_cleaned_utilization, 0.35);
}

TEST(SimTest, LowUtilizationWriteCostNearOne) {
  // Paper: "At overall disk capacity utilizations under 20% the write cost
  // drops below 2.0."
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.15;
  SimResult r = CleaningSimulator(cfg).Run();
  EXPECT_LT(r.write_cost, 2.0);
}

TEST(SimTest, GreedyLocalityMakesThingsWorse) {
  // Figure 4's surprising result: hot-and-cold with greedy cleaning (and age
  // sorting) performs WORSE than uniform.
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.75;
  cfg.policy = Policy::kGreedy;
  SimResult uniform = CleaningSimulator(cfg).Run();

  cfg.pattern = AccessPattern::kHotAndCold;
  cfg.age_sort = true;  // the paper's "LFS hot-and-cold" curve sorts by age
  cfg.warmup_overwrites_per_file = 60;  // cold data needs longer to settle
  SimResult hotcold = CleaningSimulator(cfg).Run();

  EXPECT_GT(hotcold.write_cost, uniform.write_cost);
}

TEST(SimTest, CostBenefitBeatsGreedyUnderLocality) {
  // Figure 7: the cost-benefit policy reduces write cost substantially
  // (up to ~50%) versus greedy for the hot-and-cold pattern.
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.75;
  cfg.pattern = AccessPattern::kHotAndCold;
  cfg.age_sort = true;
  cfg.warmup_overwrites_per_file = 60;

  cfg.policy = Policy::kGreedy;
  SimResult greedy = CleaningSimulator(cfg).Run();
  cfg.policy = Policy::kCostBenefit;
  SimResult cb = CleaningSimulator(cfg).Run();

  EXPECT_LT(cb.write_cost, greedy.write_cost);
}

TEST(SimTest, CostBenefitProducesBimodalDistribution) {
  // Figure 6: cost-benefit cleans cold segments at high utilization and hot
  // segments at low utilization, producing a bimodal segment distribution —
  // in particular substantial mass at both ends.
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.75;
  cfg.pattern = AccessPattern::kHotAndCold;
  cfg.policy = Policy::kCostBenefit;
  cfg.age_sort = true;
  cfg.warmup_overwrites_per_file = 80;
  SimResult r = CleaningSimulator(cfg).Run();

  const Histogram& h = r.segment_distribution;
  double low_mass = 0;
  double high_mass = 0;
  double mid_mass = 0;
  for (size_t b = 0; b < h.bucket_count(); b++) {
    double mid = h.BucketMid(b);
    if (mid < 0.35) {
      low_mass += h.Fraction(b);
    } else if (mid > 0.75) {
      high_mass += h.Fraction(b);
    } else {
      mid_mass += h.Fraction(b);
    }
  }
  // Bimodal: both tails hold real mass; the middle is not dominant.
  EXPECT_GT(high_mass, 0.25);
  EXPECT_GT(low_mass, 0.03);
  EXPECT_LT(mid_mass, 0.6);
}

TEST(SimTest, GreedyCleansAtTheCleaningPoint) {
  // Figure 5: under greedy every segment's utilization drops to the cleaning
  // threshold before being cleaned, so the cleaned-segment distribution is
  // tight around that point (low spread).
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.75;
  cfg.policy = Policy::kGreedy;
  SimResult r = CleaningSimulator(cfg).Run();
  // The mean cleaned u is strictly between 0 and the overall utilization.
  EXPECT_GT(r.cleaned_distribution.Mean(), 0.2);
  EXPECT_LT(r.cleaned_distribution.Mean(), 0.75);
}

TEST(SimTest, DeterministicAcrossRuns) {
  SimConfig cfg = BaseConfig();
  cfg.disk_utilization = 0.6;
  SimResult a = CleaningSimulator(cfg).Run();
  SimResult b = CleaningSimulator(cfg).Run();
  EXPECT_DOUBLE_EQ(a.write_cost, b.write_cost);
  EXPECT_EQ(a.segments_cleaned, b.segments_cleaned);
}

}  // namespace
}  // namespace lfs::sim
