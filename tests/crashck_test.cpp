// Crash-consistency model checker: exhaustive exploration of the canonical
// workloads must find zero oracle failures (and actually prune states); a
// recording mutated to skip the pre-checkpoint write barrier must FAIL
// exploration (the oracle has teeth); the trace minimizer must shrink a
// failing workload while preserving its failure; fuzzer scripts round-trip
// through the text format and explore clean.

#include <string>

#include <gtest/gtest.h>

#include "src/check/explorer.h"
#include "src/check/fuzzer.h"
#include "src/check/minimize.h"
#include "src/check/workload.h"
#include "tests/test_util.h"

namespace lfs::check {
namespace {

std::string FailureDigest(const ExploreReport& report) {
  std::string out;
  for (const CrashFailure& f : report.failures) {
    out += "  " + f.Describe() + "\n";
  }
  return out;
}

TEST(CrashckExploreTest, ExhaustiveSmallfilesIsClean) {
  ASSERT_OK_AND_ASSIGN(Workload w, CanonicalWorkload("smallfiles"));
  ASSERT_OK_AND_ASSIGN(ExploreReport report, ExploreWorkload(w));
  EXPECT_TRUE(report.clean()) << FailureDigest(report);
  EXPECT_GT(report.edges, 0u);
  EXPECT_GT(report.crash_points, report.unique_states);  // pruning happened
  EXPECT_GT(report.pruned, 0u);
  EXPECT_EQ(report.checked, report.unique_states);  // no budget in play
  EXPECT_EQ(report.skipped_budget, 0u);
}

TEST(CrashckExploreTest, ExhaustiveNamespaceIsClean) {
  // The namespace workload runs two logs: rename cycles and link webs cross
  // the multi-log flush-ordering paths.
  ASSERT_OK_AND_ASSIGN(Workload w, CanonicalWorkload("namespace"));
  ASSERT_OK_AND_ASSIGN(ExploreReport report, ExploreWorkload(w));
  EXPECT_TRUE(report.clean()) << FailureDigest(report);
  EXPECT_GT(report.pruned, 0u);
  EXPECT_EQ(report.checked, report.unique_states);
}

TEST(CrashckExploreTest, StateBudgetSkipsButKeepsEnumerating) {
  ASSERT_OK_AND_ASSIGN(Workload w, CanonicalWorkload("smallfiles"));
  ExploreOptions options;
  options.max_states = 10;
  ASSERT_OK_AND_ASSIGN(ExploreReport report, ExploreWorkload(w, options));
  EXPECT_EQ(report.checked, 10u);
  EXPECT_GT(report.skipped_budget, 0u);
  EXPECT_EQ(report.checked + report.skipped_budget, report.unique_states);
}

TEST(CrashckTeethTest, SkippedCheckpointBarrierIsDetected) {
  // Reorder the final checkpoint-region write ahead of the data writes the
  // same op flushed — the image sequence a missing write barrier would
  // produce. A healthy filesystem explored under this mutation MUST fail:
  // if it doesn't, the oracle has lost its teeth.
  ASSERT_OK_AND_ASSIGN(Workload w, CanonicalWorkload("smallfiles"));
  ASSERT_OK_AND_ASSIGN(Recording recording, RecordWorkload(w));
  ASSERT_OK_AND_ASSIGN(auto mutator, SkippedCheckpointBarrierMutator(recording));
  ExploreOptions options;
  options.mutate_edges = mutator;
  ASSERT_OK_AND_ASSIGN(ExploreReport report, ExploreRecording(recording, options));
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.failures.empty());
}

TEST(CrashckMinimizeTest, MinimizerShrinksSeededFailure) {
  ASSERT_OK_AND_ASSIGN(Workload w, CanonicalWorkload("smallfiles"));
  ASSERT_OK_AND_ASSIGN(Recording recording, RecordWorkload(w));
  ASSERT_OK_AND_ASSIGN(auto mutator, SkippedCheckpointBarrierMutator(recording));
  MinimizeOptions options;
  options.explore.mutate_edges = mutator;
  ASSERT_OK_AND_ASSIGN(MinimizeResult result, MinimizeWorkload(w, options));
  // The reduction still fails, and never grew.
  EXPECT_FALSE(result.report.clean());
  EXPECT_LE(result.workload.ops.size(), w.ops.size());
  EXPECT_GT(result.probes, 0u);
}

TEST(CrashckMinimizeTest, CleanWorkloadIsRejected) {
  ASSERT_OK_AND_ASSIGN(Workload w, CanonicalWorkload("smallfiles"));
  Result<MinimizeResult> result = MinimizeWorkload(w);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CrashckFuzzTest, SeededScriptsExploreClean) {
  for (uint64_t seed : {0, 7, 22}) {
    Workload w = FuzzWorkload(seed);
    ASSERT_OK_AND_ASSIGN(ExploreReport report, ExploreWorkload(w));
    EXPECT_TRUE(report.clean()) << "seed " << seed << "\n" << FailureDigest(report);
  }
}

TEST(CrashckFuzzTest, ScriptsRoundTripThroughText) {
  for (uint64_t seed : {0, 1, 13}) {
    Workload w = FuzzWorkload(seed);
    std::string text = w.ToText();
    ASSERT_OK_AND_ASSIGN(Workload back, Workload::FromText(text));
    EXPECT_EQ(back.ToText(), text) << "seed " << seed;
    EXPECT_EQ(back.ops.size(), w.ops.size());
    EXPECT_EQ(back.num_logs, w.num_logs);
  }
}

TEST(CrashckFuzzTest, DeterministicContentIsStable) {
  std::vector<uint8_t> a = DeterministicContent(42, 1000);
  std::vector<uint8_t> b = DeterministicContent(42, 1000);
  EXPECT_EQ(a, b);
  EXPECT_NE(DeterministicContent(43, 1000), a);
}

}  // namespace
}  // namespace lfs::check
