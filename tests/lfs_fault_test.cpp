// Media-fault injection tests: the graceful-degradation ladder.
//
//   normal -> retrying (transient errors absorbed by retry-with-backoff)
//          -> quarantined (cleaner fences off segments with latent damage)
//          -> degraded read-only (both checkpoint regions unwritable)
//
// Plus the detection paths (payload-CRC verification of reads, backup
// superblock at mount) and a seeded fault-matrix stress that must finish
// with zero divergence from an in-memory model and a clean offline check.

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/disk/fault_disk.h"
#include "src/lfs/check.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

TEST(FaultInjectionTest, TransientReadFaultsAreRetriedTransparently) {
  LfsConfig cfg = SmallConfig();
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  std::vector<uint8_t> content = TestContent(1, 4 * cfg.block_size);
  ASSERT_OK(fs->WriteFile("/f", content));
  ASSERT_OK(fs->Sync());
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs->Lookup("/f"));
  ASSERT_OK_AND_ASSIGN(std::vector<BlockNo> addrs, fs->FileBlockAddresses(ino));
  ASSERT_FALSE(addrs.empty());

  // Remount to empty the read cache, so the read really hits the device.
  ASSERT_OK(fs->Unmount());
  fs.reset();
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();

  disk.AddTransientReadFault(addrs[0], /*fail_count=*/2);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> got, fs->ReadFile("/f"));
  EXPECT_EQ(got, content);
  EXPECT_GE(fs->stats().io_retries, 2u);
  EXPECT_EQ(fs->stats().io_retry_failures, 0u);
  EXPECT_EQ(disk.counters().transient_read_faults, 2u);
  EXPECT_EQ(fs->mount_state(), MountState::kReadWrite);
}

TEST(FaultInjectionTest, TransientCheckpointWriteIsRetried) {
  LfsConfig cfg = SmallConfig();
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  const Superblock& sb = fs->superblock();

  ASSERT_OK(fs->WriteFile("/f", TestContent(2, 2048)));
  // Whichever region the next checkpoint targets, its first write attempt
  // fails once; the retry must succeed without falling back.
  disk.AddTransientWriteFault(sb.cr_base0, 1);
  disk.AddTransientWriteFault(sb.cr_base1, 1);
  ASSERT_OK(fs->Sync());
  EXPECT_GE(fs->stats().io_retries, 1u);
  EXPECT_EQ(fs->stats().io_retry_failures, 0u);
  EXPECT_EQ(fs->stats().checkpoint_fallbacks, 0u);
  EXPECT_EQ(fs->mount_state(), MountState::kReadWrite);
}

TEST(FaultInjectionTest, CheckpointFallsBackToAlternateRegion) {
  LfsConfig cfg = SmallConfig();
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  const Superblock& sb = fs->superblock();

  // One region permanently dead. Checkpoints alternate regions, so within
  // two Syncs one of them must take the fallback path — and stay read-write.
  disk.AddLatentError(sb.cr_base0, sb.cr_blocks);
  std::vector<uint8_t> content = TestContent(9, 3 * cfg.block_size);
  ASSERT_OK(fs->WriteFile("/a", content));
  ASSERT_OK(fs->Sync());
  ASSERT_OK(fs->WriteFile("/b", TestContent(10, 1024)));
  ASSERT_OK(fs->Sync());
  EXPECT_GE(fs->stats().checkpoint_fallbacks, 1u);
  EXPECT_EQ(fs->mount_state(), MountState::kReadWrite);

  // Mount tolerates the unreadable region: the surviving one wins.
  fs.reset();
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> got, fs->ReadFile("/a"));
  EXPECT_EQ(got, content);
  EXPECT_TRUE(fs->Exists("/b"));
}

TEST(FaultInjectionTest, CorruptReadDetectedByPayloadCrc) {
  LfsConfig cfg = SmallConfig();
  cfg.verify_read_crcs = true;
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  ASSERT_OK(fs->WriteFile("/victim", TestContent(3, 6 * cfg.block_size)));
  ASSERT_OK(fs->Sync());  // separate partial, so /clean's CRC extent is undamaged
  ASSERT_OK(fs->WriteFile("/clean", TestContent(4, 2 * cfg.block_size)));
  ASSERT_OK(fs->Sync());
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs->Lookup("/victim"));
  ASSERT_OK_AND_ASSIGN(std::vector<BlockNo> addrs, fs->FileBlockAddresses(ino));
  ASSERT_OK(fs->Unmount());
  fs.reset();

  disk.CorruptOnRead(addrs[0]);
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  auto bad = fs->ReadFile("/victim");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption) << bad.status().ToString();
  EXPECT_GE(fs->stats().read_crc_failures, 1u);
  // Undamaged data remains readable; the error is pinpointed, not global.
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> ok_data, fs->ReadFile("/clean"));
  EXPECT_EQ(ok_data, TestContent(4, 2 * cfg.block_size));
  EXPECT_EQ(fs->mount_state(), MountState::kReadWrite);
}

TEST(FaultInjectionTest, CleanerQuarantinesDamagedVictims) {
  LfsConfig cfg = SmallConfig();
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 8192));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  const Superblock& sb = fs->superblock();

  // Dirty a batch of segments, then kill half the files so the survivors
  // leave the segments part-live (cleanable, but not harvestable for free).
  for (int i = 0; i < 12; i++) {
    ASSERT_OK(fs->WriteFile("/q" + std::to_string(i),
                            TestContent(100 + i, 8 * cfg.block_size)));
  }
  ASSERT_OK(fs->Sync());
  for (int i = 0; i < 12; i += 2) {
    ASSERT_OK(fs->Unlink("/q" + std::to_string(i)));
  }
  ASSERT_OK(fs->Sync());

  // Latent-fail the first summary block of every part-live dirty segment:
  // the cleaner cannot walk those chains at all.
  for (SegNo seg = 0; seg < sb.nsegments; seg++) {
    const SegUsageEntry& e = fs->seg_usage().Get(seg);
    if (e.state == SegState::kDirty && e.live_bytes > 0) {
      disk.AddLatentError(sb.SegmentBase(seg), 1);
    }
  }

  ASSERT_OK(fs->ForceClean().status());
  EXPECT_GT(fs->stats().segments_quarantined, 0u);
  EXPECT_GT(fs->seg_usage().quarantined_count(), 0u);

  std::set<SegNo> quarantined;
  for (SegNo seg = 0; seg < sb.nsegments; seg++) {
    if (fs->seg_usage().Get(seg).state == SegState::kQuarantined) {
      quarantined.insert(seg);
    }
  }
  ASSERT_FALSE(quarantined.empty());

  // The filesystem keeps working: survivors readable (their payload blocks
  // are intact even where the summary is not), new writes land elsewhere.
  for (int i = 1; i < 12; i += 2) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data,
                         fs->ReadFile("/q" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(100 + i, 8 * cfg.block_size));
  }
  for (int i = 0; i < 8; i++) {
    ASSERT_OK(fs->WriteFile("/post" + std::to_string(i),
                            TestContent(200 + i, 4 * cfg.block_size)));
  }
  ASSERT_OK(fs->Sync());

  // Quarantine is sticky: no segment was recycled into allocation.
  for (SegNo seg : quarantined) {
    EXPECT_EQ(fs->seg_usage().Get(seg).state, SegState::kQuarantined) << "seg " << seg;
  }
  EXPECT_EQ(fs->StatFs().quarantined_segments, quarantined.size());

  // Quarantine survives remount, and the offline checker accepts the image
  // (damage confined to quarantined segments is warned about, not an error).
  ASSERT_OK(fs->Unmount());
  fs.reset();
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  for (SegNo seg : quarantined) {
    EXPECT_EQ(fs->seg_usage().Get(seg).state, SegState::kQuarantined) << "seg " << seg;
  }
  for (int i = 1; i < 12; i += 2) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data,
                         fs->ReadFile("/q" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(100 + i, 8 * cfg.block_size));
  }
  ASSERT_OK(fs->Unmount());
  fs.reset();
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
  EXPECT_EQ(report->quarantined_segments, quarantined.size());
}

TEST(FaultInjectionTest, DoubleCheckpointFailureEntersDegradedReadOnly) {
  LfsConfig cfg = SmallConfig();
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  const Superblock& sb = fs->superblock();

  std::vector<uint8_t> durable = TestContent(5, 4 * cfg.block_size);
  ASSERT_OK(fs->WriteFile("/durable", durable));
  ASSERT_OK(fs->Sync());
  std::vector<uint8_t> tail = TestContent(6, 2 * cfg.block_size);
  ASSERT_OK(fs->WriteFile("/tail", tail));

  // Both checkpoint regions go permanently bad: the next checkpoint cannot
  // land anywhere.
  disk.AddLatentError(sb.cr_base0, sb.cr_blocks);
  disk.AddLatentError(sb.cr_base1, sb.cr_blocks);
  Status sync_st = fs->Sync();
  ASSERT_FALSE(sync_st.ok());
  EXPECT_EQ(sync_st.code(), StatusCode::kIoError) << sync_st.ToString();

  EXPECT_EQ(fs->mount_state(), MountState::kDegradedReadOnly);
  EXPECT_TRUE(fs->degraded());
  EXPECT_EQ(fs->StatFs().state, MountState::kDegradedReadOnly);
  EXPECT_GE(fs->stats().degraded_entries, 1u);

  // No mutation gets through...
  Status w = fs->WriteFile("/new", TestContent(7, 512));
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.code(), StatusCode::kReadOnly) << w.ToString();

  // ...but everything already in the log stays readable — no crash, no
  // corruption, including data flushed by the very Sync whose checkpoint
  // failed.
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> d, fs->ReadFile("/durable"));
  EXPECT_EQ(d, durable);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> t, fs->ReadFile("/tail"));
  EXPECT_EQ(t, tail);
}

TEST(FaultInjectionTest, MountFallsBackToBackupSuperblock) {
  LfsConfig cfg = SmallConfig();
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  std::vector<uint8_t> content = TestContent(8, 3 * cfg.block_size);
  ASSERT_OK(fs->WriteFile("/keep", content));
  ASSERT_OK(fs->Unmount());
  fs.reset();

  // The primary superblock becomes unreadable; mount must fall back to the
  // backup copy in the last device block.
  disk.AddLatentError(0);
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  EXPECT_EQ(fs->stats().superblock_fallbacks, 1u);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> got, fs->ReadFile("/keep"));
  EXPECT_EQ(got, content);
  ASSERT_OK(fs->Unmount());
  fs.reset();

  // The offline checker takes the same fallback and warns about it.
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
  EXPECT_GE(report->warnings, 1u);
}

// The fault matrix: every operation races a seeded rain of transient read
// and write faults. The retry layer must absorb all of it — the filesystem
// may never diverge from the in-memory model, and the image must check
// clean after a remount. Each seed runs in both locking regimes (the first
// bool selects cfg.concurrent), so the sharded-lock front-end faces the
// same matrix the single-lock survivors passed; the second bool re-runs the
// matrix with adaptive cleaning + partial compaction on, so a fault landing
// mid-drain (victim half-relocated, cursor advanced) must quarantine the
// victim, never corrupt the namespace or the live accounting.
class FaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, bool>> {};

TEST_P(FaultMatrixTest, SeededTransientStressZeroDivergence) {
  const auto [seed, concurrent, fine_grained] = GetParam();
  LfsConfig cfg = SmallConfig();
  cfg.concurrent = concurrent;
  if (fine_grained) {
    cfg.adaptive_cleaning = true;
    cfg.partial_compaction = true;
    cfg.partial_compaction_min_u = 0.3;
    cfg.partial_compaction_max_blocks = 8;
  }
  FaultDisk disk(std::make_unique<MemDisk>(cfg.block_size, 8192), seed);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  Rng rng(seed * 31 + 7);

  disk.SetTransientReadFaultRate(0.02);
  disk.SetTransientWriteFaultRate(0.02);

  std::map<std::string, std::vector<uint8_t>> model;
  const int kSteps = 800;
  for (int i = 0; i < kSteps; i++) {
    uint64_t op = rng.NextBelow(100);
    std::string path = "/m" + std::to_string(rng.NextBelow(20));
    if (op < 50) {
      std::vector<uint8_t> content =
          TestContent(seed * 100000 + static_cast<uint64_t>(i),
                      1 + rng.NextBelow(12 * cfg.block_size));
      if (model.count(path)) {
        ASSERT_OK_AND_ASSIGN(InodeNum ino, fs->Lookup(path));
        ASSERT_OK(fs->Truncate(ino, 0));
        ASSERT_OK(fs->WriteAt(ino, 0, content));
      } else {
        ASSERT_OK(fs->WriteFile(path, content));
      }
      model[path] = std::move(content);
    } else if (op < 62) {
      if (model.count(path)) {
        ASSERT_OK(fs->Unlink(path));
        model.erase(path);
      }
    } else if (op < 80) {
      if (model.count(path)) {
        ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data, fs->ReadFile(path));
        ASSERT_EQ(data, model[path]) << path << " diverged at step " << i;
      }
    } else if (op < 92) {
      ASSERT_OK(fs->Sync());
    } else {
      ASSERT_OK(fs->ForceClean().status());
    }
  }

  // Faults actually fired, and every one of them was absorbed.
  EXPECT_GT(disk.counters().transient_read_faults +
                disk.counters().transient_write_faults,
            0u);
  EXPECT_GT(fs->stats().io_retries, 0u);
  EXPECT_EQ(fs->stats().io_retry_failures, 0u);
  EXPECT_EQ(fs->mount_state(), MountState::kReadWrite);

  ASSERT_OK(fs->Unmount());
  fs.reset();

  // Quiesce the media and verify the full universe after a remount.
  disk.ClearAllFaults();
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  for (const auto& [path, content] : model) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data, fs->ReadFile(path));
    ASSERT_EQ(data, content) << path << " diverged after remount";
  }
  ASSERT_OK(fs->Unmount());
  fs.reset();

  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
  for (const auto& m : report->messages) {
    ADD_FAILURE() << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultMatrixTest,
                         ::testing::Combine(::testing::Values(17, 58, 4242),
                                            ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace lfs
