// Tests for the offline checker (lfsck's engine): a healthy image after
// heavy churn must check CLEAN with zero errors; deliberately corrupted
// images must be detected; crashed (tail-bearing) images must remain
// error-free (the tail is recoverable, not corrupt).

#include <string>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "src/lfs/check.h"
#include "src/util/json.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = SmallConfig();
    disk_ = std::make_unique<MemDisk>(cfg_.block_size, 8192);
    auto fs = LfsFileSystem::Mkfs(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  // Create files, delete some, clean, checkpoint — a well-worn image.
  void ChurnAndUnmount() {
    Rng rng(5);
    for (int i = 0; i < 80; i++) {
      ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i),
                               TestContent(i, 500 + rng.NextBelow(9000))));
    }
    ASSERT_OK(fs_->Mkdir("/sub"));
    ASSERT_OK(fs_->WriteFile("/sub/nested", TestContent(99, 3000)));
    ASSERT_OK(fs_->Link("/f1", "/link_to_f1"));
    for (int i = 0; i < 80; i += 3) {
      ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
    }
    ASSERT_OK(fs_->Sync());
    ASSERT_OK(fs_->ForceClean().status());
    ASSERT_OK(fs_->Unmount());
    fs_.reset();
  }

  LfsConfig cfg_;
  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<LfsFileSystem> fs_;
};

TEST_F(CheckTest, FreshImageIsClean) {
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(disk_.get()));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
  EXPECT_EQ(report.directories, 1u);  // the root
}

TEST_F(CheckTest, ChurnedImageIsCleanAndInventoried) {
  ChurnAndUnmount();
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(disk_.get()));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
  for (const auto& m : report.messages) {
    ADD_FAILURE_AT("check_test.cpp", __LINE__) << m;
  }
  // 80 files - 27 deleted + 1 nested = 54 regular files; root + /sub dirs.
  EXPECT_EQ(report.files, 54u);
  EXPECT_EQ(report.directories, 2u);
  EXPECT_GT(report.live_data_blocks, 0u);
  EXPECT_GT(report.partial_writes, 0u);
}

TEST_F(CheckTest, RepeatedCheckpointsConvergeToZeroWarnings) {
  // The usage-table snapshot for the active segment lags by one checkpoint;
  // a second checkpoint with no intervening traffic must make it exact.
  ASSERT_OK(fs_->WriteFile("/f", TestContent(1, 5000)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Unmount());
  fs_.reset();
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(disk_.get()));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
  EXPECT_EQ(report.warnings, 0u) << report.Summary();
}

TEST_F(CheckTest, ToJsonIsParseableAndCarriesFindings) {
  ChurnAndUnmount();
  // Clean image first: valid JSON, ok=true, inventory matches the report.
  ASSERT_OK_AND_ASSIGN(CheckReport clean, CheckLfsImage(disk_.get()));
  ASSERT_OK_AND_ASSIGN(json::Value doc, json::Parse(clean.ToJson()));
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("ok"), nullptr);
  EXPECT_TRUE(doc.Find("ok")->as_bool());
  EXPECT_EQ(doc.Find("errors")->as_number(), 0.0);
  EXPECT_EQ(doc.Find("files")->as_number(), static_cast<double>(clean.files));
  ASSERT_NE(doc.Find("findings"), nullptr);
  ASSERT_TRUE(doc.Find("findings")->is_array());

  // Smash a log block: the findings array must carry structured entries.
  auto raw = disk_->raw();
  std::vector<uint8_t> block(cfg_.block_size);
  ASSERT_TRUE(disk_->Read(0, 1, block).ok());
  ASSERT_OK_AND_ASSIGN(Superblock sb, Superblock::DecodeFrom(block));
  std::fill(raw.begin() + static_cast<long>((sb.seg_start + 1) * cfg_.block_size),
            raw.begin() + static_cast<long>((sb.seg_start + 2) * cfg_.block_size), 0xFF);
  ASSERT_OK_AND_ASSIGN(CheckReport bad, CheckLfsImage(disk_.get()));
  ASSERT_GT(bad.findings.size(), 0u);
  ASSERT_OK_AND_ASSIGN(json::Value bad_doc, json::Parse(bad.ToJson()));
  const json::Value* findings = bad_doc.Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->as_array().size(), bad.findings.size());
  for (const json::Value& f : findings->as_array()) {
    ASSERT_TRUE(f.is_object());
    ASSERT_NE(f.Find("invariant"), nullptr);
    EXPECT_FALSE(f.Find("invariant")->as_string().empty());
    ASSERT_NE(f.Find("severity"), nullptr);
    const std::string& sev = f.Find("severity")->as_string();
    EXPECT_TRUE(sev == "error" || sev == "warning") << sev;
    ASSERT_NE(f.Find("message"), nullptr);
    EXPECT_FALSE(f.Find("message")->as_string().empty());
  }
}

TEST_F(CheckTest, DetectsCorruptedInodeBlock) {
  ChurnAndUnmount();
  // Find a live inode location via a clean check first, then smash a block
  // in the middle of the log and expect errors.
  ASSERT_OK_AND_ASSIGN(CheckReport before, CheckLfsImage(disk_.get()));
  ASSERT_EQ(before.errors, 0u);
  // Zero a block in the first segment (the log's oldest data). Some block in
  // there is live after churn; zeroing it breaks payload CRCs at minimum.
  auto raw = disk_->raw();
  uint64_t seg0_base = 0;
  {
    std::vector<uint8_t> block(cfg_.block_size);
    ASSERT_TRUE(disk_->Read(0, 1, block).ok());
    auto sb = Superblock::DecodeFrom(block);
    ASSERT_TRUE(sb.ok());
    seg0_base = sb->seg_start;
  }
  std::fill(raw.begin() + static_cast<long>((seg0_base + 1) * cfg_.block_size),
            raw.begin() + static_cast<long>((seg0_base + 2) * cfg_.block_size), 0xFF);
  ASSERT_OK_AND_ASSIGN(CheckReport after, CheckLfsImage(disk_.get()));
  EXPECT_GT(after.errors + after.warnings, 0u) << after.Summary();
}

TEST_F(CheckTest, DetectsTrashedImapChunk) {
  ChurnAndUnmount();
  // Read the newest checkpoint to find an imap chunk, then trash it.
  std::vector<uint8_t> block(cfg_.block_size);
  ASSERT_TRUE(disk_->Read(0, 1, block).ok());
  auto sb = Superblock::DecodeFrom(block);
  ASSERT_TRUE(sb.ok());
  std::vector<uint8_t> region(size_t{sb->cr_blocks} * cfg_.block_size);
  Checkpoint newest;
  bool have = false;
  for (BlockNo base : {sb->cr_base0, sb->cr_base1}) {
    ASSERT_TRUE(disk_->Read(base, sb->cr_blocks, region).ok());
    auto ck = Checkpoint::DecodeFrom(region);
    if (ck.ok() && (!have || ck->ckpt_seq > newest.ckpt_seq)) {
      newest = std::move(ck).value();
      have = true;
    }
  }
  ASSERT_TRUE(have);
  BlockNo victim = newest.imap_chunk_addr[0];
  auto raw = disk_->raw();
  for (uint32_t i = 0; i < cfg_.block_size; i++) {
    raw[victim * cfg_.block_size + i] ^= 0xA5;
  }
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(disk_.get()));
  EXPECT_GT(report.errors, 0u) << report.Summary();
}

TEST_F(CheckTest, CrashedImageHasNoErrors) {
  // A crash leaves a log tail past the checkpoint; that is a RECOVERABLE
  // state, and the checker must not call it corruption.
  ASSERT_OK(fs_->WriteFile("/durable", TestContent(1, 4000)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->WriteFile("/tail", TestContent(2, 40 * 1024)));
  fs_.reset();  // crash: no checkpoint for /tail
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(disk_.get()));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
}

TEST_F(CheckTest, NotAnLfsImage) {
  MemDisk junk(1024, 64);
  auto raw = junk.raw();
  for (size_t i = 0; i < raw.size(); i++) {
    raw[i] = static_cast<uint8_t>(i);
  }
  auto report = CheckLfsImage(&junk);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckTest, CleanAfterCrashRecoveryRoundTrip) {
  // crash -> remount (roll-forward) -> unmount -> the image checks clean.
  CrashDisk crash(std::make_unique<MemDisk>(cfg_.block_size, 8192));
  auto fs = std::move(LfsFileSystem::Mkfs(&crash, cfg_)).value();
  ASSERT_OK(fs->WriteFile("/a", TestContent(1, 30000)));
  ASSERT_OK(fs->Sync());
  ASSERT_OK(fs->WriteFile("/b", TestContent(2, 50000)));
  crash.CrashNow();
  fs.reset();
  crash.ClearCrash();
  fs = std::move(LfsFileSystem::Mount(&crash, cfg_)).value();
  ASSERT_OK(fs->Unmount());
  fs.reset();
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(&crash));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
}

}  // namespace
}  // namespace lfs
