// Differential property test: a long random operation sequence is applied
// simultaneously to the LFS, the FFS baseline, and a trivial in-memory model.
// All three must agree at every step. This is the strongest functional
// correctness check in the suite — the two real filesystems share no storage
// code, so agreement means both implement the FileSystem contract.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ffs/ffs.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;

// In-memory reference model of a flat-ish filesystem namespace.
class ModelFs {
 public:
  struct Node {
    bool is_dir = false;
    std::vector<uint8_t> data;
  };

  bool Exists(const std::string& path) const { return nodes_.count(path) != 0; }
  bool IsDir(const std::string& path) const {
    auto it = nodes_.find(path);
    return it != nodes_.end() && it->second.is_dir;
  }
  void CreateFile(const std::string& path) { nodes_[path] = Node{false, {}}; }
  void Mkdir(const std::string& path) { nodes_[path] = Node{true, {}}; }
  void Remove(const std::string& path) { nodes_.erase(path); }
  bool DirEmpty(const std::string& path) const {
    std::string prefix = path + "/";
    for (const auto& [p, n] : nodes_) {
      if (p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0) {
        return false;
      }
    }
    return true;
  }
  void WriteAt(const std::string& path, uint64_t off, std::span<const uint8_t> data) {
    auto& node = nodes_[path];
    if (node.data.size() < off + data.size()) {
      node.data.resize(off + data.size(), 0);
    }
    std::copy(data.begin(), data.end(), node.data.begin() + off);
  }
  void Truncate(const std::string& path, uint64_t size) {
    nodes_[path].data.resize(size, 0);
  }
  const std::vector<uint8_t>& Data(const std::string& path) { return nodes_[path].data; }
  const std::map<std::string, Node>& nodes() const { return nodes_; }

 private:
  std::map<std::string, Node> nodes_;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, RandomOpsAgree) {
  LfsConfig cfg = SmallConfig();
  auto lfs_disk = std::make_unique<MemDisk>(cfg.block_size, 16384);  // 16 MB
  auto ffs_disk = std::make_unique<MemDisk>(cfg.block_size, 16384);
  auto lfs_r = LfsFileSystem::Mkfs(lfs_disk.get(), cfg);
  ASSERT_TRUE(lfs_r.ok());
  auto ffs_r = ffs::FfsFileSystem::Mkfs(ffs_disk.get(), cfg.block_size);
  ASSERT_TRUE(ffs_r.ok());
  std::unique_ptr<FileSystem> systems[2] = {std::move(lfs_r).value(),
                                            std::move(ffs_r).value()};
  ModelFs model;

  Rng rng(GetParam());
  std::vector<std::string> dirs = {""};  // "" denotes the root
  auto random_dir = [&]() { return dirs[rng.NextBelow(dirs.size())]; };
  auto random_name = [&]() { return "n" + std::to_string(rng.NextBelow(40)); };

  for (int step = 0; step < 600; step++) {
    uint64_t op = rng.NextBelow(100);
    std::string dir = random_dir();
    std::string path = dir + "/" + random_name();
    if (op < 30) {
      // Create + write.
      size_t size = rng.NextBelow(20000);
      std::vector<uint8_t> content = testing::TestContent(rng.NextU64() % 1000, size);
      bool model_ok = !model.Exists(path) && (dir.empty() || model.IsDir(dir));
      for (auto& fs : systems) {
        Status st = fs->WriteFile(path, content);
        EXPECT_EQ(st.ok(), model_ok) << path << " step " << step << ": " << st.ToString();
      }
      if (model_ok) {
        model.CreateFile(path);
        model.WriteAt(path, 0, content);
      }
    } else if (op < 45) {
      // Overwrite at a random offset.
      if (model.Exists(path) && !model.IsDir(path)) {
        uint64_t off = rng.NextBelow(30000);
        std::vector<uint8_t> content = testing::TestContent(step, rng.NextBelow(5000) + 1);
        for (auto& fs : systems) {
          auto ino = fs->Lookup(path);
          ASSERT_TRUE(ino.ok());
          ASSERT_OK(fs->WriteAt(*ino, off, content));
        }
        model.WriteAt(path, off, content);
      }
    } else if (op < 60) {
      // Unlink.
      bool model_ok = model.Exists(path) && !model.IsDir(path);
      for (auto& fs : systems) {
        EXPECT_EQ(fs->Unlink(path).ok(), model_ok) << path;
      }
      if (model_ok) {
        model.Remove(path);
      }
    } else if (op < 70) {
      // Mkdir.
      bool model_ok = !model.Exists(path) && (dir.empty() || model.IsDir(dir));
      for (auto& fs : systems) {
        EXPECT_EQ(fs->Mkdir(path).ok(), model_ok) << path;
      }
      if (model_ok) {
        model.Mkdir(path);
        dirs.push_back(path);
      }
    } else if (op < 80) {
      // Truncate.
      if (model.Exists(path) && !model.IsDir(path)) {
        uint64_t size = rng.NextBelow(25000);
        for (auto& fs : systems) {
          auto ino = fs->Lookup(path);
          ASSERT_TRUE(ino.ok());
          ASSERT_OK(fs->Truncate(*ino, size));
        }
        model.Truncate(path, size);
      }
    } else if (op < 90) {
      // Rename a file to a fresh name in a random directory.
      std::string to_dir = random_dir();
      std::string to = to_dir + "/r" + std::to_string(step);
      if (model.Exists(path) && !model.IsDir(path) && !model.Exists(to)) {
        for (auto& fs : systems) {
          ASSERT_OK(fs->Rename(path, to));
        }
        std::vector<uint8_t> data = model.Data(path);
        model.Remove(path);
        model.CreateFile(to);
        model.WriteAt(to, 0, data);
      }
    } else {
      // Verify a random existing file's contents in both systems.
      if (model.Exists(path) && !model.IsDir(path)) {
        for (auto& fs : systems) {
          auto data = fs->ReadFile(path);
          ASSERT_TRUE(data.ok()) << path;
          EXPECT_EQ(*data, model.Data(path)) << path << " step " << step;
        }
      }
    }
  }

  // Final sweep: every model file matches both filesystems byte for byte.
  for (const auto& [path, node] : model.nodes()) {
    for (auto& fs : systems) {
      if (node.is_dir) {
        EXPECT_TRUE(fs->StatPath(path).ok()) << path;
      } else {
        auto data = fs->ReadFile(path);
        ASSERT_TRUE(data.ok()) << path;
        EXPECT_EQ(*data, node.data) << path;
      }
    }
  }
  // And both survive a sync.
  for (auto& fs : systems) {
    ASSERT_OK(fs->Sync());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace lfs
