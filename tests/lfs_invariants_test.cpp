// Property tests on the full filesystem's internal invariants:
//
//   - the segment usage table's live-byte accounting agrees with a ground-
//     truth liveness scan of the whole log, after arbitrary op sequences,
//     cleaning, and remounts;
//   - file contents survive any interleaving of ops + cleaning + remount;
//   - the read cache never changes observable behaviour;
//   - geometry sweep: everything holds across block and segment sizes.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

// Applies a deterministic random op soup to the filesystem and the model
// (cumulative: pre-existing model files are overwritten, not re-created).
void Churn(LfsFileSystem* fs, uint64_t seed, int steps,
           std::map<std::string, std::vector<uint8_t>>* model_ptr) {
  Rng rng(seed);
  auto& model = *model_ptr;
  for (int i = 0; i < steps; i++) {
    uint64_t op = rng.NextBelow(10);
    std::string path = "/p" + std::to_string(rng.NextBelow(30));
    if (op < 5) {
      size_t size = rng.NextBelow(16000);
      std::vector<uint8_t> content = TestContent(seed * 1000 + i, size);
      if (model.count(path)) {
        auto ino = fs->Lookup(path);
        EXPECT_TRUE(ino.ok()) << path;
        if (!ino.ok()) {
          continue;
        }
        (void)fs->Truncate(*ino, 0);
        EXPECT_TRUE(fs->WriteAt(*ino, 0, content).ok());
      } else {
        EXPECT_TRUE(fs->WriteFile(path, content).ok());
      }
      model[path] = std::move(content);
    } else if (op < 7) {
      if (model.count(path)) {
        EXPECT_TRUE(fs->Unlink(path).ok());
        model.erase(path);
      }
    } else if (op < 8) {
      if (model.count(path)) {
        auto ino = fs->Lookup(path);
        EXPECT_TRUE(ino.ok());
        if (!ino.ok()) {
          continue;
        }
        uint64_t newsize = rng.NextBelow(model[path].size() + 1);
        EXPECT_TRUE(fs->Truncate(*ino, newsize).ok());
        model[path].resize(newsize);
      }
    } else if (op < 9) {
      (void)fs->Sync();
    } else {
      (void)fs->ForceClean().status();
    }
  }
}

void VerifyModel(LfsFileSystem* fs,
                 const std::map<std::string, std::vector<uint8_t>>& model) {
  for (const auto& [path, content] : model) {
    auto data = fs->ReadFile(path);
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, content) << path;
  }
  auto entries = fs->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), model.size());
}

// Ground truth: the usage table's total live bytes must equal what a full
// liveness scan of the log finds (inode slots counted at slot granularity).
void VerifyUsageAgainstScan(LfsFileSystem* fs) {
  auto by_kind = fs->LiveBytesByKind();
  ASSERT_TRUE(by_kind.ok()) << by_kind.status().ToString();
  uint64_t scanned = 0;
  for (uint64_t b : *by_kind) {
    scanned += b;
  }
  EXPECT_EQ(fs->seg_usage().TotalLiveBytes(), scanned);
}

class InvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantTest, UsageTableMatchesGroundTruthScan) {
  LfsConfig cfg = SmallConfig();
  MemDisk disk(cfg.block_size, 8192);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  std::map<std::string, std::vector<uint8_t>> model;
  Churn(fs.get(), GetParam(), 250, &model);
  ASSERT_TRUE(fs->Sync().ok());
  VerifyUsageAgainstScan(fs.get());
  VerifyModel(fs.get(), model);
}

TEST_P(InvariantTest, SurvivesCleanAndRemountCycles) {
  LfsConfig cfg = SmallConfig();
  MemDisk disk(cfg.block_size, 8192);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  std::map<std::string, std::vector<uint8_t>> model;
  for (int round = 0; round < 3; round++) {
    Churn(fs.get(), GetParam() * 17 + round, 120, &model);
    for (int pass = 0; pass < 4; pass++) {
      auto n = fs->ForceClean();
      ASSERT_TRUE(n.ok());
      if (*n == 0) {
        break;
      }
    }
    ASSERT_TRUE(fs->Unmount().ok());
    fs.reset();
    fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
    VerifyModel(fs.get(), model);
    VerifyUsageAgainstScan(fs.get());
  }
}

TEST_P(InvariantTest, ReadCacheIsTransparent) {
  LfsConfig with_cache = SmallConfig();
  with_cache.read_cache_blocks = 64;
  LfsConfig no_cache = SmallConfig();
  no_cache.read_cache_blocks = 0;

  MemDisk d1(with_cache.block_size, 8192);
  MemDisk d2(no_cache.block_size, 8192);
  auto fs1 = std::move(LfsFileSystem::Mkfs(&d1, with_cache)).value();
  auto fs2 = std::move(LfsFileSystem::Mkfs(&d2, no_cache)).value();

  std::map<std::string, std::vector<uint8_t>> m1;
  std::map<std::string, std::vector<uint8_t>> m2;
  Churn(fs1.get(), GetParam(), 200, &m1);
  Churn(fs2.get(), GetParam(), 200, &m2);
  ASSERT_EQ(m1.size(), m2.size());
  for (const auto& [path, content] : m1) {
    auto a = fs1->ReadFile(path);
    auto b = fs2->ReadFile(path);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << path;
    EXPECT_EQ(*a, content) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest, ::testing::Values(11, 22, 33, 44));

// Geometry sweep: the same workload must hold for every block/segment size.
struct Geometry {
  uint32_t block_size;
  uint32_t segment_blocks;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, BasicWorkloadHolds) {
  LfsConfig cfg;
  cfg.block_size = GetParam().block_size;
  cfg.segment_blocks = GetParam().segment_blocks;
  cfg.max_inodes = 2048;
  cfg.clean_lo = 3;
  cfg.clean_hi = 5;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 2;
  cfg.write_buffer_blocks = GetParam().segment_blocks;
  MemDisk disk(cfg.block_size, (8u << 20) / cfg.block_size);  // 8 MB
  auto fs_r = LfsFileSystem::Mkfs(&disk, cfg);
  ASSERT_TRUE(fs_r.ok()) << fs_r.status().ToString();
  auto fs = std::move(fs_r).value();

  std::map<std::string, std::vector<uint8_t>> model;
  Churn(fs.get(), 99, 150, &model);
  ASSERT_TRUE(fs->Unmount().ok());
  fs.reset();
  fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  VerifyModel(fs.get(), model);
  VerifyUsageAgainstScan(fs.get());
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(Geometry{512, 32}, Geometry{1024, 16},
                                           Geometry{1024, 64}, Geometry{4096, 16},
                                           Geometry{4096, 64}, Geometry{8192, 32}));

}  // namespace
}  // namespace lfs
