// Large-file edge cases: the direct / single-indirect / double-indirect
// boundaries, holes spanning whole indirect ranges, truncation at exact
// boundaries, and recovery of multi-level files. SmallConfig uses 1-KB
// blocks (12 direct, 128 pointers per indirect block), so the boundaries
// are at 12 KB and 140 KB — cheap to cross.

#include <string>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

class LargeFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = SmallConfig();
    disk_ = std::make_unique<MemDisk>(cfg_.block_size, 16384);  // 16 MB
    fs_ = std::move(LfsFileSystem::Mkfs(disk_.get(), cfg_)).value();
    bs_ = cfg_.block_size;
    ppb_ = bs_ / 8;
    direct_bytes_ = kNumDirect * bs_;              // 12 KB
    single_bytes_ = direct_bytes_ + ppb_ * bs_;    // 140 KB
  }

  void Remount() {
    ASSERT_OK(fs_->Unmount());
    fs_.reset();
    fs_ = std::move(LfsFileSystem::Mount(disk_.get(), cfg_)).value();
  }

  LfsConfig cfg_;
  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<LfsFileSystem> fs_;
  uint32_t bs_ = 0;
  uint32_t ppb_ = 0;
  uint64_t direct_bytes_ = 0;
  uint64_t single_bytes_ = 0;
};

TEST_F(LargeFileTest, ExactlyDirectBoundary) {
  for (uint64_t size : {direct_bytes_ - 1, direct_bytes_, direct_bytes_ + 1}) {
    std::string path = "/b" + std::to_string(size);
    ASSERT_OK(fs_->WriteFile(path, TestContent(size, size)));
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile(path));
    EXPECT_EQ(data, TestContent(size, size)) << size;
  }
  Remount();
  for (uint64_t size : {direct_bytes_ - 1, direct_bytes_, direct_bytes_ + 1}) {
    std::string path = "/b" + std::to_string(size);
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile(path));
    EXPECT_EQ(data, TestContent(size, size)) << size;
  }
}

TEST_F(LargeFileTest, ExactlySingleIndirectBoundary) {
  for (uint64_t size : {single_bytes_ - 1, single_bytes_, single_bytes_ + bs_}) {
    std::string path = "/s" + std::to_string(size);
    ASSERT_OK(fs_->WriteFile(path, TestContent(size, size)));
  }
  Remount();
  for (uint64_t size : {single_bytes_ - 1, single_bytes_, single_bytes_ + bs_}) {
    std::string path = "/s" + std::to_string(size);
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile(path));
    EXPECT_EQ(data, TestContent(size, size)) << size;
  }
}

TEST_F(LargeFileTest, DeepIntoDoubleIndirect) {
  // Several indirect blocks under the double-indirect root.
  uint64_t size = single_bytes_ + 3 * ppb_ * bs_ + 777;
  std::vector<uint8_t> content = TestContent(7, size);
  ASSERT_OK(fs_->WriteFile("/deep", content));
  Remount();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/deep"));
  EXPECT_EQ(data, content);
}

TEST_F(LargeFileTest, HoleSpanningWholeIndirectRange) {
  // Write one block at the start and one far into the double-indirect zone;
  // everything between is a hole, including entire absent indirect blocks.
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Create("/holey"));
  std::vector<uint8_t> head = TestContent(1, bs_);
  std::vector<uint8_t> tail = TestContent(2, bs_);
  uint64_t tail_off = single_bytes_ + 2 * ppb_ * bs_;
  ASSERT_OK(fs_->WriteAt(ino, 0, head));
  ASSERT_OK(fs_->WriteAt(ino, tail_off, tail));
  Remount();
  ASSERT_OK_AND_ASSIGN(ino, fs_->Lookup("/holey"));
  std::vector<uint8_t> buf(bs_);
  ASSERT_OK(fs_->ReadAt(ino, 0, buf).status());
  EXPECT_EQ(buf, head);
  ASSERT_OK(fs_->ReadAt(ino, tail_off, buf).status());
  EXPECT_EQ(buf, tail);
  // Probe several hole offsets: all zeros.
  for (uint64_t off : {direct_bytes_, single_bytes_, single_bytes_ + ppb_ * bs_ / 2}) {
    ASSERT_OK(fs_->ReadAt(ino, off, buf).status());
    EXPECT_TRUE(std::all_of(buf.begin(), buf.end(), [](uint8_t b) { return b == 0; }))
        << off;
  }
}

TEST_F(LargeFileTest, TruncateAcrossIndirectBoundaries) {
  uint64_t size = single_bytes_ + 2 * ppb_ * bs_;
  std::vector<uint8_t> content = TestContent(9, size);
  ASSERT_OK(fs_->WriteFile("/t", content));
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/t"));
  // Shrink stepwise across each boundary, verifying after each step.
  for (uint64_t target : {single_bytes_ + 5, single_bytes_, direct_bytes_ + 5,
                          direct_bytes_, uint64_t{100}}) {
    ASSERT_OK(fs_->Truncate(ino, target));
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/t"));
    std::vector<uint8_t> expect = content;
    expect.resize(target);
    EXPECT_EQ(data, expect) << target;
  }
  Remount();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/t"));
  std::vector<uint8_t> expect = content;
  expect.resize(100);
  EXPECT_EQ(data, expect);
}

TEST_F(LargeFileTest, GrowAfterShrinkReusesBoundariesCleanly) {
  ASSERT_OK(fs_->WriteFile("/g", TestContent(3, single_bytes_ + 5000)));
  ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup("/g"));
  ASSERT_OK(fs_->Truncate(ino, 500));
  std::vector<uint8_t> more = TestContent(4, 3 * ppb_ * bs_);
  ASSERT_OK(fs_->WriteAt(ino, 500, more));
  Remount();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/g"));
  ASSERT_EQ(data.size(), 500 + more.size());
  std::vector<uint8_t> head = TestContent(3, single_bytes_ + 5000);
  EXPECT_TRUE(std::equal(data.begin(), data.begin() + 500, head.begin()));
  EXPECT_TRUE(std::equal(data.begin() + 500, data.end(), more.begin()));
}

TEST_F(LargeFileTest, DoubleIndirectFileSurvivesCrashRecovery) {
  LfsConfig cfg = SmallConfig();
  CrashDisk crash(std::make_unique<MemDisk>(cfg.block_size, 16384));
  auto fs = std::move(LfsFileSystem::Mkfs(&crash, cfg)).value();
  ASSERT_OK(fs->Sync());
  uint64_t size = single_bytes_ + ppb_ * bs_ + 4321;
  std::vector<uint8_t> content = TestContent(11, size);
  ASSERT_OK(fs->WriteFile("/big", content));
  crash.CrashNow();
  fs.reset();
  crash.ClearCrash();
  fs = std::move(LfsFileSystem::Mount(&crash, cfg)).value();
  ASSERT_TRUE(fs->Exists("/big"));
  ASSERT_OK_AND_ASSIGN(auto data, fs->ReadFile("/big"));
  // Prefix semantics: whatever was flushed must be intact.
  ASSERT_LE(data.size(), content.size());
  content.resize(data.size());
  EXPECT_EQ(data, content);
}

TEST_F(LargeFileTest, CleaningMovesIndirectBlocksCorrectly) {
  uint64_t size = single_bytes_ + ppb_ * bs_;
  std::vector<uint8_t> content = TestContent(13, size);
  ASSERT_OK(fs_->WriteFile("/victim", content));
  // Fragment around it and clean until the file's segments are compacted.
  for (int i = 0; i < 40; i++) {
    ASSERT_OK(fs_->WriteFile("/x" + std::to_string(i), TestContent(i, 4000)));
  }
  for (int i = 0; i < 40; i += 2) {
    ASSERT_OK(fs_->Unlink("/x" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  for (int pass = 0; pass < 12; pass++) {
    ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
    if (n == 0) {
      break;
    }
  }
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/victim"));
  EXPECT_EQ(data, content);
  Remount();
  ASSERT_OK_AND_ASSIGN(data, fs_->ReadFile("/victim"));
  EXPECT_EQ(data, content);
}

}  // namespace
}  // namespace lfs
