// Multi-threaded front-end stress: N writer threads, M reader threads, and
// the background cleaner thread hammer one filesystem through a shared
// write-back block cache, then the image is checked three ways:
//
//   1. differential: every file must read back exactly what its owning
//      writer thread's in-memory reference model says it wrote;
//   2. lfsck: the offline checker must find a consistent image after
//      unmount (run against the raw device, past the cache);
//   3. remount: a fresh mount must serve the same contents.
//
// Run under ThreadSanitizer (-DLFS_SANITIZE=thread) in CI; any data race in
// the lock regime, the cache shards, or the cleaner handoff fires there.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/cached_device.h"
#include "src/lfs/check.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr int kOpsPerWriter = 300;

LfsConfig ConcurrentConfig() {
  LfsConfig cfg = SmallConfig();
  cfg.segment_blocks = 32;
  cfg.clean_lo = 6;
  cfg.clean_hi = 10;
  cfg.segments_per_pass = 6;
  cfg.write_buffer_blocks = 32;
  cfg.concurrent = true;  // reader-writer locking + background cleaner
  // CI's TSan job re-runs the whole suite with LFS_TEST_NUM_LOGS=2 so the
  // multi-log append path races against the background cleaner too.
  if (const char* logs = getenv("LFS_TEST_NUM_LOGS")) {
    cfg.num_logs = static_cast<uint32_t>(std::max(1, atoi(logs)));
  }
  return cfg;
}

class ConcurrentStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentStressTest, WritersReadersAndCleanerRace) {
  const uint64_t seed = GetParam();
  LfsConfig cfg = ConcurrentConfig();
  MemDisk disk(cfg.block_size, 24576);  // 24 MB platter
  cache::CachedDeviceOptions copts;
  copts.capacity_blocks = 512;
  copts.shards = 4;
  cache::CachedBlockDevice dev(&disk, copts);
  auto fs = std::move(LfsFileSystem::Mkfs(&dev, cfg)).value();

  // Each writer owns one file; single-writer-per-file keeps the reference
  // model exact while every structure underneath (log, imap, usage table,
  // caches, cleaner) is fully shared.
  std::vector<InodeNum> inos(kWriters);
  for (int w = 0; w < kWriters; w++) {
    auto created = fs->Create("/w" + std::to_string(w));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    inos[w] = created.value();
  }

  struct Model {
    std::vector<uint8_t> content;
  };
  std::vector<Model> models(kWriters);
  std::atomic<int> failures{0};

  auto writer = [&](int w) {
    Rng rng(seed * 1315423911u + w);
    Model& model = models[w];
    std::vector<uint8_t> out;
    for (int i = 0; i < kOpsPerWriter; i++) {
      uint32_t op = static_cast<uint32_t>(rng.NextU64() % 10);
      if (op < 6) {  // write a random extent
        uint64_t off = rng.NextU64() % (16 * 1024);
        size_t len = 1 + static_cast<size_t>(rng.NextU64() % 4096);
        std::vector<uint8_t> data = TestContent(rng.NextU64(), len);
        if (!fs->WriteAt(inos[w], off, data).ok()) {
          failures++;
          return;
        }
        if (model.content.size() < off + len) {
          model.content.resize(off + len, 0);
        }
        std::copy(data.begin(), data.end(), model.content.begin() + off);
      } else if (op < 8) {  // read back an extent and compare to the model
        if (model.content.empty()) {
          continue;
        }
        uint64_t off = rng.NextU64() % model.content.size();
        size_t len = 1 + static_cast<size_t>(rng.NextU64() % 2048);
        out.assign(len, 0);
        auto got = fs->ReadAt(inos[w], off, out);
        if (!got.ok()) {
          failures++;
          return;
        }
        size_t expect = std::min<size_t>(len, model.content.size() - off);
        if (got.value() != expect ||
            !std::equal(out.begin(), out.begin() + expect,
                        model.content.begin() + off)) {
          failures++;
          return;
        }
      } else if (op == 8) {  // truncate
        uint64_t size = rng.NextU64() % (8 * 1024);
        if (!fs->Truncate(inos[w], size).ok()) {
          failures++;
          return;
        }
        model.content.resize(size, 0);
      } else {  // namespace traffic in a private subtree
        std::string dir = "/w" + std::to_string(w) + "d";
        (void)fs->Mkdir(dir);
        std::string path = dir + "/f" + std::to_string(rng.NextU64() % 4);
        if (rng.NextU64() % 2 == 0) {
          (void)fs->Create(path);
        } else {
          (void)fs->Unlink(path);
        }
      }
    }
  };

  std::atomic<bool> stop{false};
  auto reader = [&](int r) {
    Rng rng(seed * 2654435761u + 1000 + r);
    std::vector<uint8_t> out(4096);
    while (!stop.load(std::memory_order_relaxed)) {
      int w = static_cast<int>(rng.NextU64() % kWriters);
      std::string path = "/w" + std::to_string(w);
      auto ino = fs->Lookup(path);
      if (!ino.ok()) {
        failures++;
        return;
      }
      auto st = fs->Stat(ino.value());
      if (!st.ok()) {
        failures++;
        return;
      }
      // Concurrent reads may observe any committed prefix of the writer's
      // stream; only crashes/races/corruption are failures here.
      uint64_t off = rng.NextU64() % (16 * 1024);
      (void)fs->ReadAt(ino.value(), off, out);
      (void)fs->ReadDir("/");
      (void)fs->StatFs();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back(reader, r);
  }
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back(writer, w);
  }
  for (int w = 0; w < kWriters; w++) {
    threads[kReaders + w].join();
  }
  stop.store(true);
  for (int r = 0; r < kReaders; r++) {
    threads[r].join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Differential check: quiesced, every byte must match the model.
  for (int w = 0; w < kWriters; w++) {
    auto st = fs->Stat(inos[w]);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_EQ(st->size, models[w].content.size()) << "file w" << w;
    std::vector<uint8_t> out(models[w].content.size());
    if (!out.empty()) {
      auto got = fs->ReadAt(inos[w], 0, out);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value(), out.size());
      ASSERT_EQ(out, models[w].content) << "content mismatch in w" << w;
    }
  }

  ASSERT_OK(fs->Unmount());
  ASSERT_OK(dev.Flush());  // push any write-back frames to the platter

  // lfsck against the raw platter: the image must be consistent without the
  // cache in the read path.
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();

  // Remount (no cache) and re-verify contents survived the unmount.
  auto fs2r = LfsFileSystem::Mount(&disk, cfg);
  ASSERT_TRUE(fs2r.ok()) << fs2r.status().ToString();
  auto fs2 = std::move(fs2r).value();
  for (int w = 0; w < kWriters; w++) {
    auto ino = fs2->Lookup("/w" + std::to_string(w));
    ASSERT_TRUE(ino.ok()) << ino.status().ToString();
    std::vector<uint8_t> out(models[w].content.size());
    if (!out.empty()) {
      auto got = fs2->ReadAt(ino.value(), 0, out);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(out, models[w].content) << "post-remount mismatch in w" << w;
    }
  }
  ASSERT_OK(fs2->Unmount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// The background cleaner must actually run: fill the filesystem enough to
// cross the low watermark while the foreground stays above the critical
// floor, then observe reclaimed segments without any explicit ForceClean.
TEST(ConcurrentCleanerTest, BackgroundThreadReclaimsSegments) {
  LfsConfig cfg = ConcurrentConfig();
  MemDisk disk(cfg.block_size, 2048);  // 2 MB: 64 segments, easy to exhaust
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  // Mixed-liveness churn: many small files rewritten at staggered times, so
  // segments end up partially live and reclaiming them requires a real
  // cleaner pass (copying), not just the free zero-live harvest at
  // checkpoint. Total write volume is several times the platter.
  constexpr int kFiles = 24;
  std::vector<InodeNum> inos(kFiles);
  for (int i = 0; i < kFiles; i++) {
    auto created = fs->Create("/f" + std::to_string(i));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    inos[i] = created.value();
    ASSERT_OK(fs->WriteAt(inos[i], 0, TestContent(i, 4 * 1024)));
  }
  for (int round = 0; round < 1500; round++) {
    int i = (round * 7) % kFiles;
    ASSERT_OK(fs->WriteAt(inos[i], 0, TestContent(1000 + round, 4 * 1024)));
  }
  // Wait on the (atomic) cleaned-segment counter, not clean_segments():
  // the latter reads the usage table, which the cleaner thread may still be
  // mutating under its own lock.
  for (int i = 0; i < 200 && fs->stats().segments_cleaned == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_OK(fs->Sync());
  EXPECT_GT(fs->stats().segments_cleaned, 0u)
      << "background cleaner never reclaimed a segment";
  ASSERT_OK(fs->Unmount());
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->errors, 0u) << report->Summary();
}

}  // namespace
}  // namespace lfs
