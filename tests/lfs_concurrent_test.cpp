// Multi-threaded front-end stress: N writer threads, M reader threads, and
// the background cleaner thread hammer one filesystem through a shared
// write-back block cache, then the image is checked three ways:
//
//   1. differential: every file must read back exactly what its owning
//      writer thread's in-memory reference model says it wrote;
//   2. lfsck: the offline checker must find a consistent image after
//      unmount (run against the raw device, past the cache);
//   3. remount: a fresh mount must serve the same contents.
//
// Run under ThreadSanitizer (-DLFS_SANITIZE=thread) in CI; any data race in
// the lock regime, the cache shards, or the cleaner handoff fires there.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/cached_device.h"
#include "src/disk/crash_disk.h"
#include "src/lfs/check.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr int kOpsPerWriter = 300;

LfsConfig ConcurrentConfig() {
  LfsConfig cfg = SmallConfig();
  cfg.segment_blocks = 32;
  cfg.clean_lo = 6;
  cfg.clean_hi = 10;
  cfg.segments_per_pass = 6;
  cfg.write_buffer_blocks = 32;
  cfg.concurrent = true;  // reader-writer locking + background cleaner
  // CI's TSan job re-runs the whole suite with LFS_TEST_NUM_LOGS=2 so the
  // multi-log append path races against the background cleaner too.
  if (const char* logs = getenv("LFS_TEST_NUM_LOGS")) {
    cfg.num_logs = static_cast<uint32_t>(std::max(1, atoi(logs)));
  }
  return cfg;
}

class ConcurrentStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentStressTest, WritersReadersAndCleanerRace) {
  const uint64_t seed = GetParam();
  LfsConfig cfg = ConcurrentConfig();
  MemDisk disk(cfg.block_size, 24576);  // 24 MB platter
  cache::CachedDeviceOptions copts;
  copts.capacity_blocks = 512;
  copts.shards = 4;
  cache::CachedBlockDevice dev(&disk, copts);
  auto fs = std::move(LfsFileSystem::Mkfs(&dev, cfg)).value();

  // Each writer owns one file; single-writer-per-file keeps the reference
  // model exact while every structure underneath (log, imap, usage table,
  // caches, cleaner) is fully shared.
  std::vector<InodeNum> inos(kWriters);
  for (int w = 0; w < kWriters; w++) {
    auto created = fs->Create("/w" + std::to_string(w));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    inos[w] = created.value();
  }

  struct Model {
    std::vector<uint8_t> content;
  };
  std::vector<Model> models(kWriters);
  std::atomic<int> failures{0};

  auto writer = [&](int w) {
    Rng rng(seed * 1315423911u + w);
    Model& model = models[w];
    std::vector<uint8_t> out;
    for (int i = 0; i < kOpsPerWriter; i++) {
      uint32_t op = static_cast<uint32_t>(rng.NextU64() % 10);
      if (op < 6) {  // write a random extent
        uint64_t off = rng.NextU64() % (16 * 1024);
        size_t len = 1 + static_cast<size_t>(rng.NextU64() % 4096);
        std::vector<uint8_t> data = TestContent(rng.NextU64(), len);
        if (!fs->WriteAt(inos[w], off, data).ok()) {
          failures++;
          return;
        }
        if (model.content.size() < off + len) {
          model.content.resize(off + len, 0);
        }
        std::copy(data.begin(), data.end(), model.content.begin() + off);
      } else if (op < 8) {  // read back an extent and compare to the model
        if (model.content.empty()) {
          continue;
        }
        uint64_t off = rng.NextU64() % model.content.size();
        size_t len = 1 + static_cast<size_t>(rng.NextU64() % 2048);
        out.assign(len, 0);
        auto got = fs->ReadAt(inos[w], off, out);
        if (!got.ok()) {
          failures++;
          return;
        }
        size_t expect = std::min<size_t>(len, model.content.size() - off);
        if (got.value() != expect ||
            !std::equal(out.begin(), out.begin() + expect,
                        model.content.begin() + off)) {
          failures++;
          return;
        }
      } else if (op == 8) {  // truncate
        uint64_t size = rng.NextU64() % (8 * 1024);
        if (!fs->Truncate(inos[w], size).ok()) {
          failures++;
          return;
        }
        model.content.resize(size, 0);
      } else {  // namespace traffic in a private subtree
        std::string dir = "/w" + std::to_string(w) + "d";
        (void)fs->Mkdir(dir);
        std::string path = dir + "/f" + std::to_string(rng.NextU64() % 4);
        if (rng.NextU64() % 2 == 0) {
          (void)fs->Create(path);
        } else {
          (void)fs->Unlink(path);
        }
      }
    }
  };

  std::atomic<bool> stop{false};
  auto reader = [&](int r) {
    Rng rng(seed * 2654435761u + 1000 + r);
    std::vector<uint8_t> out(4096);
    while (!stop.load(std::memory_order_relaxed)) {
      int w = static_cast<int>(rng.NextU64() % kWriters);
      std::string path = "/w" + std::to_string(w);
      auto ino = fs->Lookup(path);
      if (!ino.ok()) {
        failures++;
        return;
      }
      auto st = fs->Stat(ino.value());
      if (!st.ok()) {
        failures++;
        return;
      }
      // Concurrent reads may observe any committed prefix of the writer's
      // stream; only crashes/races/corruption are failures here.
      uint64_t off = rng.NextU64() % (16 * 1024);
      (void)fs->ReadAt(ino.value(), off, out);
      (void)fs->ReadDir("/");
      (void)fs->StatFs();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back(reader, r);
  }
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back(writer, w);
  }
  for (int w = 0; w < kWriters; w++) {
    threads[kReaders + w].join();
  }
  stop.store(true);
  for (int r = 0; r < kReaders; r++) {
    threads[r].join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Differential check: quiesced, every byte must match the model.
  for (int w = 0; w < kWriters; w++) {
    auto st = fs->Stat(inos[w]);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_EQ(st->size, models[w].content.size()) << "file w" << w;
    std::vector<uint8_t> out(models[w].content.size());
    if (!out.empty()) {
      auto got = fs->ReadAt(inos[w], 0, out);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value(), out.size());
      ASSERT_EQ(out, models[w].content) << "content mismatch in w" << w;
    }
  }

  ASSERT_OK(fs->Unmount());
  ASSERT_OK(dev.Flush());  // push any write-back frames to the platter

  // lfsck against the raw platter: the image must be consistent without the
  // cache in the read path.
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();

  // Remount (no cache) and re-verify contents survived the unmount.
  auto fs2r = LfsFileSystem::Mount(&disk, cfg);
  ASSERT_TRUE(fs2r.ok()) << fs2r.status().ToString();
  auto fs2 = std::move(fs2r).value();
  for (int w = 0; w < kWriters; w++) {
    auto ino = fs2->Lookup("/w" + std::to_string(w));
    ASSERT_TRUE(ino.ok()) << ino.status().ToString();
    std::vector<uint8_t> out(models[w].content.size());
    if (!out.empty()) {
      auto got = fs2->ReadAt(ino.value(), 0, out);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(out, models[w].content) << "post-remount mismatch in w" << w;
    }
  }
  ASSERT_OK(fs2->Unmount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// The background cleaner must actually run: fill the filesystem enough to
// cross the low watermark while the foreground stays above the critical
// floor, then observe reclaimed segments without any explicit ForceClean.
TEST(ConcurrentCleanerTest, BackgroundThreadReclaimsSegments) {
  LfsConfig cfg = ConcurrentConfig();
  MemDisk disk(cfg.block_size, 2048);  // 2 MB: 64 segments, easy to exhaust
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  // Mixed-liveness churn: many small files rewritten at staggered times, so
  // segments end up partially live and reclaiming them requires a real
  // cleaner pass (copying), not just the free zero-live harvest at
  // checkpoint. Total write volume is several times the platter.
  constexpr int kFiles = 24;
  std::vector<InodeNum> inos(kFiles);
  for (int i = 0; i < kFiles; i++) {
    auto created = fs->Create("/f" + std::to_string(i));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    inos[i] = created.value();
    ASSERT_OK(fs->WriteAt(inos[i], 0, TestContent(i, 4 * 1024)));
  }
  for (int round = 0; round < 1500; round++) {
    int i = (round * 7) % kFiles;
    ASSERT_OK(fs->WriteAt(inos[i], 0, TestContent(1000 + round, 4 * 1024)));
  }
  // Wait on the (atomic) cleaned-segment counter, not clean_segments():
  // the latter reads the usage table, which the cleaner thread may still be
  // mutating under its own lock.
  for (int i = 0; i < 200 && fs->stats().segments_cleaned == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_OK(fs->Sync());
  EXPECT_GT(fs->stats().segments_cleaned, 0u)
      << "background cleaner never reclaimed a segment";
  ASSERT_OK(fs->Unmount());
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->errors, 0u) << report->Summary();
}

// Rename/link cycles across directories: kStormFiles files rotate between
// four directories, with every thread attempting the rename from every
// possible source directory (at most one can win). A deliberately tiny
// stripe table (inode_shards = 4) forces distinct inodes onto the same
// stripe, so the two-inode ordered acquisition in rename/link is exercised
// under real collision pressure — an ordering bug deadlocks, a lost-update
// bug breaks the exactly-one-home invariant below.
TEST(ConcurrentNamespaceTest, RenameLinkStormAcrossDirectories) {
  LfsConfig cfg = ConcurrentConfig();
  cfg.inode_shards = 4;  // maximize stripe collisions
  MemDisk disk(cfg.block_size, 8192);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  constexpr int kDirs = 4;
  constexpr int kStormFiles = 8;
  constexpr int kStormThreads = 4;
  constexpr int kStormRounds = 200;
  for (int d = 0; d < kDirs; d++) {
    ASSERT_OK(fs->Mkdir("/d" + std::to_string(d)));
  }
  for (int i = 0; i < kStormFiles; i++) {
    auto created = fs->Create("/d0/f" + std::to_string(i));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }

  std::atomic<int> failures{0};
  auto storm = [&](int t) {
    Rng rng(0x9e3779b9u * (t + 1));
    for (int r = 0; r < kStormRounds; r++) {
      int i = static_cast<int>(rng.NextU64() % kStormFiles);
      std::string fname = "/f" + std::to_string(i);
      int dst = static_cast<int>(rng.NextU64() % kDirs);
      if (rng.NextU64() % 4 == 0) {
        // Hard-link the file wherever it currently lives under a
        // thread-private name, then remove the link. The link path is
        // touched by no other thread, so a successful Link *must* be
        // followed by a successful Unlink of it.
        int s = static_cast<int>(rng.NextU64() % kDirs);
        std::string link_path = "/d" + std::to_string(s) + "/l" +
                                std::to_string(t) + "_" + std::to_string(i);
        if (fs->Link("/d" + std::to_string(s) + fname, link_path).ok()) {
          if (!fs->Unlink(link_path).ok()) {
            failures++;
            return;
          }
        }
      } else {
        // Try the rename from every source directory; the file lives in
        // exactly one, and concurrent threads race for the same move.
        for (int s = 0; s < kDirs; s++) {
          if (s == dst) {
            continue;
          }
          (void)fs->Rename("/d" + std::to_string(s) + fname,
                           "/d" + std::to_string(dst) + fname);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kStormThreads; t++) {
    threads.emplace_back(storm, t);
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Exactly-one-home: each file must exist in precisely one directory with
  // nlink 1 (every transient hard link was removed by its owner).
  auto verify_homes = [&](LfsFileSystem* f) {
    for (int i = 0; i < kStormFiles; i++) {
      int homes = 0;
      for (int d = 0; d < kDirs; d++) {
        auto ino = f->Lookup("/d" + std::to_string(d) + "/f" + std::to_string(i));
        if (!ino.ok()) {
          continue;
        }
        homes++;
        auto st = f->Stat(ino.value());
        ASSERT_TRUE(st.ok()) << st.status().ToString();
        EXPECT_EQ(st->nlink, 1u) << "f" << i << " in d" << d;
        EXPECT_EQ(st->type, FileType::kRegular);
      }
      EXPECT_EQ(homes, 1) << "f" << i << " found in " << homes << " directories";
    }
  };
  verify_homes(fs.get());

  ASSERT_OK(fs->Unmount());
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();

  auto fs2 = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
  verify_homes(fs2.get());
  ASSERT_OK(fs2->Unmount());
}

// Create/unlink storm on ONE shared directory: all threads mutate the same
// directory inode (the hottest stripe there is), each through thread-private
// names that admit an exact local model — a create against an absent name
// must succeed, an unlink against a present one must succeed. A shared name
// is hammered too (no model; only structural consistency afterwards).
TEST(ConcurrentNamespaceTest, CreateUnlinkStormOneDirectory) {
  LfsConfig cfg = ConcurrentConfig();
  MemDisk disk(cfg.block_size, 8192);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  ASSERT_OK(fs->Mkdir("/dir"));

  constexpr int kStormThreads = 4;
  constexpr int kNamesPerThread = 4;
  constexpr int kStormOps = 400;
  std::atomic<int> failures{0};
  // Final presence of each thread-private name, filled in as threads exit.
  bool present[kStormThreads][kNamesPerThread] = {};

  auto storm = [&](int t) {
    Rng rng(0x85ebca6bu * (t + 1));
    bool mine[kNamesPerThread] = {};
    for (int i = 0; i < kStormOps; i++) {
      if (rng.NextU64() % 8 == 0) {
        // Racy shared name: outcomes depend on interleaving; only the
        // post-quiesce structural checks judge this traffic.
        if (rng.NextU64() % 2 == 0) {
          (void)fs->Create("/dir/shared");
        } else {
          (void)fs->Unlink("/dir/shared");
        }
        continue;
      }
      int k = static_cast<int>(rng.NextU64() % kNamesPerThread);
      std::string path = "/dir/t" + std::to_string(t) + "_" + std::to_string(k);
      if (!mine[k]) {
        if (!fs->Create(path).ok()) {
          failures++;
          return;
        }
        mine[k] = true;
      } else {
        if (!fs->Unlink(path).ok()) {
          failures++;
          return;
        }
        mine[k] = false;
      }
    }
    for (int k = 0; k < kNamesPerThread; k++) {
      present[t][k] = mine[k];
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kStormThreads; t++) {
    threads.emplace_back(storm, t);
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_EQ(failures.load(), 0);

  // The directory must contain exactly the names the models say survive
  // (plus possibly the racy shared name), and every listed entry must
  // resolve and stat cleanly.
  auto entries = fs->ReadDir("/dir");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  size_t expected = 0;
  for (int t = 0; t < kStormThreads; t++) {
    for (int k = 0; k < kNamesPerThread; k++) {
      std::string name = "t" + std::to_string(t) + "_" + std::to_string(k);
      bool listed = std::any_of(entries->begin(), entries->end(),
                                [&](const DirEntry& e) { return e.name == name; });
      EXPECT_EQ(listed, present[t][k]) << name;
      if (present[t][k]) {
        expected++;
      }
    }
  }
  bool shared_listed = std::any_of(entries->begin(), entries->end(),
                                   [](const DirEntry& e) { return e.name == "shared"; });
  EXPECT_EQ(entries->size(), expected + (shared_listed ? 1 : 0));
  for (const DirEntry& e : entries.value()) {
    auto ino = fs->Lookup("/dir/" + e.name);
    ASSERT_TRUE(ino.ok()) << e.name << ": " << ino.status().ToString();
    EXPECT_EQ(ino.value(), e.ino);
    auto st = fs->Stat(e.ino);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    EXPECT_EQ(st->nlink, 1u) << e.name;
  }

  ASSERT_OK(fs->Unmount());
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
}

// Group-commit crash-point sweep: writers race through the transaction
// layer while the disk is armed to die after N more writes. Whatever
// half-batch was in flight at the crash must NOT damage state that a Sync()
// made durable before arming, and the surviving image must satisfy lfsck
// after roll-forward. The param is the armed countdown, sweeping crash
// points from "almost immediately" to "deep into the storm".
class GroupCommitCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupCommitCrashTest, CrashMidStormPreservesSyncedState) {
  LfsConfig cfg = ConcurrentConfig();
  CrashDisk disk(std::make_unique<MemDisk>(cfg.block_size, 8192));
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  constexpr int kStormThreads = 4;
  constexpr int kStormOps = 300;
  // Durable base state: one file per thread, synced before the crash is
  // armed. The storm never touches these, so recovery must reproduce them
  // byte-for-byte no matter where the crash lands.
  std::vector<std::vector<uint8_t>> base(kStormThreads);
  for (int t = 0; t < kStormThreads; t++) {
    auto created = fs->Create("/base" + std::to_string(t));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    base[t] = TestContent(7000 + t, 6000);
    ASSERT_OK(fs->WriteAt(created.value(), 0, base[t]));
  }
  ASSERT_OK(fs->Sync());

  disk.CrashAfterWrites(GetParam(), /*torn_blocks=*/1);

  auto storm = [&](int t) {
    Rng rng(0xc2b2ae35u * (t + 1));
    for (int i = 0; i < kStormOps && !disk.crashed(); i++) {
      std::string path = "/c" + std::to_string(t) + "_" +
                         std::to_string(rng.NextU64() % 8);
      uint32_t op = static_cast<uint32_t>(rng.NextU64() % 10);
      if (op < 6) {
        auto ino = fs->Lookup(path);
        if (!ino.ok()) {
          auto created = fs->Create(path);
          if (!created.ok()) {
            continue;  // no-space near the crash point is legitimate
          }
          ino = created;
        }
        size_t len = 1 + static_cast<size_t>(rng.NextU64() % 3000);
        (void)fs->WriteAt(ino.value(), rng.NextU64() % 4096,
                          TestContent(rng.NextU64(), len));
      } else if (op < 9) {
        (void)fs->Unlink(path);
      } else {
        (void)fs->Sync();  // group commit under fire
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kStormThreads; t++) {
    threads.emplace_back(storm, t);
  }
  for (auto& th : threads) {
    th.join();
  }

  // Power off: drop the in-memory filesystem without unmounting (the
  // destructor only stops the cleaner — no checkpoint escapes), then
  // "reboot" the device and recover from whatever survived on the platter.
  fs.reset();
  disk.ClearCrash();
  auto remounted = LfsFileSystem::Mount(&disk, cfg);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  auto fs2 = std::move(remounted).value();

  // Synced state is sacred: every base file byte-identical.
  for (int t = 0; t < kStormThreads; t++) {
    auto ino = fs2->Lookup("/base" + std::to_string(t));
    ASSERT_TRUE(ino.ok()) << "base" << t << ": " << ino.status().ToString();
    std::vector<uint8_t> out(base[t].size());
    auto got = fs2->ReadAt(ino.value(), 0, out);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value(), out.size());
    EXPECT_EQ(out, base[t]) << "synced content lost in base" << t;
  }

  // Namespace self-consistency walk: every entry recovered from the log
  // must resolve, stat, and (for files) read back its full recorded size.
  std::vector<std::string> pending_dirs = {"/"};
  std::vector<uint8_t> buf;
  while (!pending_dirs.empty()) {
    std::string dir = pending_dirs.back();
    pending_dirs.pop_back();
    auto entries = fs2->ReadDir(dir);
    ASSERT_TRUE(entries.ok()) << dir << ": " << entries.status().ToString();
    for (const DirEntry& e : entries.value()) {
      std::string path = (dir == "/" ? "/" : dir + "/") + e.name;
      auto ino = fs2->Lookup(path);
      ASSERT_TRUE(ino.ok()) << path << ": " << ino.status().ToString();
      EXPECT_EQ(ino.value(), e.ino) << path;
      auto st = fs2->Stat(e.ino);
      ASSERT_TRUE(st.ok()) << path << ": " << st.status().ToString();
      if (st->type == FileType::kDirectory) {
        pending_dirs.push_back(path);
      } else if (st->size > 0) {
        buf.assign(st->size, 0);
        auto got = fs2->ReadAt(e.ino, 0, buf);
        ASSERT_TRUE(got.ok()) << path << ": " << got.status().ToString();
        EXPECT_EQ(got.value(), buf.size()) << path;
      }
    }
  }

  ASSERT_OK(fs2->Unmount());
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, GroupCommitCrashTest,
                         ::testing::Values(0u, 3u, 12u, 40u, 110u, 260u));

}  // namespace
}  // namespace lfs
