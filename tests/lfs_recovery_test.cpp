// Crash-recovery tests (Section 4): checkpoints, roll-forward, torn writes,
// directory-operation-log replay, and a crash-point sweep that validates
// consistency after a crash at every write boundary of a workload.

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

class LfsRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = SmallConfig();
    disk_ = std::make_unique<CrashDisk>(std::make_unique<MemDisk>(cfg_.block_size, 8192));
    auto fs = LfsFileSystem::Mkfs(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  // Simulates a crash and reboots: the running filesystem instance is
  // abandoned, the device comes back, and we mount again.
  void CrashAndRemount(bool roll_forward = true) {
    disk_->CrashNow();
    fs_.reset();
    disk_->ClearCrash();
    MountOptions opts;
    opts.roll_forward = roll_forward;
    auto fs = LfsFileSystem::Mount(disk_.get(), cfg_, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  LfsConfig cfg_;
  std::unique_ptr<CrashDisk> disk_;
  std::unique_ptr<LfsFileSystem> fs_;
};

TEST_F(LfsRecoveryTest, CheckpointedDataSurvivesCrash) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(1, 2000)));
  ASSERT_OK(fs_->Sync());
  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f"));
  EXPECT_EQ(data, TestContent(1, 2000));
}

TEST_F(LfsRecoveryTest, RollForwardRecoversPostCheckpointData) {
  ASSERT_OK(fs_->Sync());
  // Written after the checkpoint; big enough that most of it is flushed to
  // the log (but never checkpointed). The unflushed tail may be lost, but
  // everything recovered must be a consistent prefix of what was written.
  std::vector<uint8_t> content = TestContent(2, 40 * 1024);
  ASSERT_OK(fs_->WriteFile("/late", content));
  EXPECT_GE(fs_->stats().checkpoints, 1u);
  CrashAndRemount(/*roll_forward=*/true);
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/late"));
  ASSERT_GT(data.size(), 0u);
  ASSERT_LE(data.size(), content.size());
  content.resize(data.size());
  EXPECT_EQ(data, content);
  EXPECT_GT(fs_->stats().rollforward_partials, 0u);
}

TEST_F(LfsRecoveryTest, WithoutRollForwardPostCheckpointDataIsDiscarded) {
  ASSERT_OK(fs_->WriteFile("/early", TestContent(3, 1000)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->WriteFile("/late", TestContent(4, 40 * 1024)));
  CrashAndRemount(/*roll_forward=*/false);
  EXPECT_TRUE(fs_->Exists("/early"));
  EXPECT_FALSE(fs_->Exists("/late"));
}

TEST_F(LfsRecoveryTest, UnflushedBufferedDataIsLostButConsistent) {
  ASSERT_OK(fs_->Sync());
  // A single small file stays in the write buffer (below the flush
  // threshold), so the crash loses it entirely.
  ASSERT_OK(fs_->WriteFile("/tiny", TestContent(5, 100)));
  CrashAndRemount();
  EXPECT_FALSE(fs_->Exists("/tiny"));
  // The filesystem is still fully usable.
  ASSERT_OK(fs_->WriteFile("/tiny", TestContent(6, 100)));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/tiny"));
  EXPECT_EQ(data, TestContent(6, 100));
}

TEST_F(LfsRecoveryTest, TornPartialWriteIsIgnored) {
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->WriteFile("/a", TestContent(7, 30 * 1024)));
  // Arm: the very next log write tears after 2 blocks persisted.
  disk_->CrashAfterWrites(0, /*torn_blocks=*/2);
  // This write's flush is torn; everything before it survived.
  Status st = fs_->WriteFile("/b", TestContent(8, 30 * 1024));
  (void)st;  // the filesystem cannot see the tear; it believes the write
  fs_.reset();
  disk_->ClearCrash();
  auto fs = LfsFileSystem::Mount(disk_.get(), cfg_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  // /a's flushed portion must be an intact prefix (the buffered tail of the
  // write may be lost; nothing recovered may be garbage).
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/a"));
  std::vector<uint8_t> expect_a = TestContent(7, 30 * 1024);
  ASSERT_LE(data.size(), expect_a.size());
  expect_a.resize(data.size());
  EXPECT_EQ(data, expect_a);
  // /b is either absent or a correct prefix — never half-readable garbage.
  if (fs_->Exists("/b")) {
    ASSERT_OK_AND_ASSIGN(auto b, fs_->ReadFile("/b"));
    std::vector<uint8_t> expect_b = TestContent(8, 30 * 1024);
    ASSERT_LE(b.size(), expect_b.size());
    expect_b.resize(b.size());
    EXPECT_EQ(b, expect_b);
  }
}

TEST_F(LfsRecoveryTest, TornCheckpointFallsBackToOlderRegion) {
  ASSERT_OK(fs_->WriteFile("/stable", TestContent(9, 5000)));
  ASSERT_OK(fs_->Sync());  // checkpoint A: /stable exists
  ASSERT_OK(fs_->WriteFile("/next", TestContent(10, 5000)));
  // Tear the next checkpoint-region write. Count the log writes the
  // checkpoint performs first: flush partials + chunks, then the CR write.
  // Instead of counting precisely, arm a tear on every write whose target is
  // a checkpoint region by crashing mid-Sync via a low writes_until_crash
  // found by probing: simplest robust approach — tear the very last write of
  // the Sync by arming with a large torn budget and scanning.
  // Pragmatically: arm so that the CR write itself is torn after 0 blocks.
  // The CR write is the final Write of Sync; we count writes in a dry run.
  uint64_t before = disk_->writes_seen();
  ASSERT_OK(fs_->Sync());  // checkpoint B completes; measure its write count
  uint64_t sync_writes = disk_->writes_seen() - before;
  ASSERT_GE(sync_writes, 1u);
  // Now do the same again and tear the final write (the CR) of checkpoint C.
  ASSERT_OK(fs_->WriteFile("/unstable", TestContent(11, 5000)));
  disk_->CrashAfterWrites(sync_writes - 1, /*torn_blocks=*/0);
  (void)fs_->Sync();  // checkpoint C: CR write torn
  fs_.reset();
  disk_->ClearCrash();
  auto fs = LfsFileSystem::Mount(disk_.get(), cfg_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  // Mount fell back to checkpoint B and rolled forward over C's log tail.
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/stable"));
  EXPECT_EQ(data, TestContent(9, 5000));
  ASSERT_OK_AND_ASSIGN(data, fs_->ReadFile("/next"));
  EXPECT_EQ(data, TestContent(10, 5000));
}

TEST_F(LfsRecoveryTest, UnlinkReplayedAfterCrash) {
  ASSERT_OK(fs_->WriteFile("/doomed", TestContent(12, 20 * 1024)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Unlink("/doomed"));
  // Push the unlink's dirlog + directory block into the log without a
  // checkpoint, then crash.
  ASSERT_OK(fs_->WriteFile("/filler", TestContent(13, 40 * 1024)));
  CrashAndRemount();
  EXPECT_FALSE(fs_->Exists("/doomed"));
  ASSERT_OK_AND_ASSIGN(auto entries, fs_->ReadDir("/"));
  for (const DirEntry& e : entries) {
    EXPECT_NE(e.name, "doomed");
  }
}

TEST_F(LfsRecoveryTest, RenameReplayedAfterCrash) {
  ASSERT_OK(fs_->WriteFile("/old", TestContent(14, 10 * 1024)));
  ASSERT_OK(fs_->WriteFile("/target", TestContent(15, 10 * 1024)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Rename("/old", "/target"));
  ASSERT_OK(fs_->WriteFile("/filler", TestContent(16, 40 * 1024)));
  CrashAndRemount();
  EXPECT_FALSE(fs_->Exists("/old"));
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/target"));
  EXPECT_EQ(data, TestContent(14, 10 * 1024));
}

TEST_F(LfsRecoveryTest, CreatesInManyDirectoriesReplayed) {
  ASSERT_OK(fs_->Mkdir("/d1"));
  ASSERT_OK(fs_->Mkdir("/d2"));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->WriteFile("/d1/a", TestContent(17, 8 * 1024)));
  ASSERT_OK(fs_->WriteFile("/d2/b", TestContent(18, 8 * 1024)));
  ASSERT_OK(fs_->WriteFile("/c", TestContent(19, 30 * 1024)));  // forces flushes
  CrashAndRemount();
  // Everything that was flushed must be consistent: entries resolve and
  // reference counts are sane.
  for (const char* path : {"/d1/a", "/d2/b", "/c"}) {
    if (fs_->Exists(path)) {
      ASSERT_OK_AND_ASSIGN(FileStat st, fs_->StatPath(path));
      EXPECT_EQ(st.nlink, 1u) << path;
    }
  }
}

TEST_F(LfsRecoveryTest, RepeatedCrashesStayConsistent) {
  for (int round = 0; round < 5; round++) {
    ASSERT_OK(fs_->WriteFile("/r" + std::to_string(round),
                             TestContent(100 + round, 20 * 1024)));
    if (round % 2 == 0) {
      ASSERT_OK(fs_->Sync());
    }
    CrashAndRemount();
  }
  // All synced rounds must exist and be fully intact; unsynced rounds may
  // survive partially but must then be a correct prefix.
  for (int round = 0; round < 5; round++) {
    std::string path = "/r" + std::to_string(round);
    if (!fs_->Exists(path)) {
      continue;
    }
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile(path));
    std::vector<uint8_t> expect = TestContent(100 + round, 20 * 1024);
    if (round % 2 == 0) {
      EXPECT_EQ(data, expect) << path;  // was checkpointed: fully durable
    } else {
      ASSERT_LE(data.size(), expect.size()) << path;
      expect.resize(data.size());
      EXPECT_EQ(data, expect) << path;
    }
  }
  EXPECT_TRUE(fs_->Exists("/r0"));
  EXPECT_TRUE(fs_->Exists("/r2"));
}

TEST_F(LfsRecoveryTest, DoubleCrashDuringRecoveryCheckpoint) {
  // Crash, begin recovery, crash AGAIN during the post-recovery checkpoint,
  // and recover a second time. The alternating checkpoint regions must make
  // this safe at any interleaving.
  ASSERT_OK(fs_->WriteFile("/base", TestContent(40, 8 * 1024)));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->WriteFile("/tail", TestContent(41, 30 * 1024)));
  CrashAndRemount();
  // Immediately crash again before this session checkpoints anything new.
  disk_->CrashNow();
  fs_.reset();
  disk_->ClearCrash();
  auto fs = LfsFileSystem::Mount(disk_.get(), cfg_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/base"));
  EXPECT_EQ(data, TestContent(40, 8 * 1024));
  // /tail: whatever survived must be an intact prefix, same as after the
  // first recovery.
  if (fs_->Exists("/tail")) {
    ASSERT_OK_AND_ASSIGN(auto tail, fs_->ReadFile("/tail"));
    std::vector<uint8_t> expect = TestContent(41, 30 * 1024);
    ASSERT_LE(tail.size(), expect.size());
    expect.resize(tail.size());
    EXPECT_EQ(tail, expect);
  }
  ASSERT_OK(fs_->WriteFile("/post", TestContent(42, 500)));
  ASSERT_OK(fs_->Sync());
}

TEST_F(LfsRecoveryTest, RecoveryAfterCleaningSession) {
  // Cleaning moves live data; a crash after cleaning (whose sources may have
  // been reused) must still recover every checkpointed file intact.
  for (int i = 0; i < 40; i++) {
    ASSERT_OK(fs_->WriteFile("/c" + std::to_string(i), TestContent(i, 6000)));
  }
  ASSERT_OK(fs_->Sync());
  for (int i = 0; i < 40; i += 2) {
    ASSERT_OK(fs_->Unlink("/c" + std::to_string(i)));
  }
  ASSERT_OK(fs_->Sync());
  for (int pass = 0; pass < 8; pass++) {
    ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
    if (n == 0) {
      break;
    }
  }
  // Post-cleaning writes land in reclaimed segments; then crash.
  ASSERT_OK(fs_->WriteFile("/fresh", TestContent(77, 25 * 1024)));
  CrashAndRemount();
  for (int i = 1; i < 40; i += 2) {
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/c" + std::to_string(i)));
    EXPECT_EQ(data, TestContent(i, 6000)) << i;
  }
  if (fs_->Exists("/fresh")) {
    ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/fresh"));
    std::vector<uint8_t> expect = TestContent(77, 25 * 1024);
    ASSERT_LE(data.size(), expect.size());
    expect.resize(data.size());
    EXPECT_EQ(data, expect);
  }
}

// Crash-point sweep: run a fixed workload, crash after the Nth device write
// for every N, remount, and check global invariants. This is the property
// test for recovery: no crash point may yield an unmountable or
// inconsistent filesystem.
class CrashPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointSweep, ConsistentAtEveryCrashPoint) {
  LfsConfig cfg = SmallConfig();
  auto disk = std::make_unique<CrashDisk>(std::make_unique<MemDisk>(cfg.block_size, 8192));
  auto fs_r = LfsFileSystem::Mkfs(disk.get(), cfg);
  ASSERT_TRUE(fs_r.ok());
  std::unique_ptr<LfsFileSystem> fs = std::move(fs_r).value();

  // Model of what was *checkpointed*: those files must exist afterwards —
  // unless a later unlink was issued, which roll-forward may legitimately
  // recover on top of the checkpoint.
  std::map<std::string, uint64_t> synced_model;  // path -> content seed/size
  std::set<std::string> unlinked_ever;

  disk->CrashAfterWrites(GetParam(), /*torn_blocks=*/1);
  auto step = [&](int i) -> bool {  // returns false once crashed
    std::string p = "/w" + std::to_string(i);
    (void)fs->WriteFile(p, TestContent(i, 3000 + i * 7));
    if (i % 3 == 2) {
      (void)fs->Unlink("/w" + std::to_string(i - 1));
      unlinked_ever.insert("/w" + std::to_string(i - 1));
    }
    if (i % 4 == 3) {
      (void)fs->Sync();
      if (!disk->crashed()) {
        // Snapshot the model at this checkpoint.
        synced_model.clear();
        for (int j = 0; j <= i; j++) {
          std::string q = "/w" + std::to_string(j);
          if (fs->Exists(q)) {
            synced_model[q] = j;
          }
        }
      }
    }
    return !disk->crashed();
  };
  for (int i = 0; i < 24 && step(i); i++) {
  }

  fs.reset();
  disk->ClearCrash();
  auto remounted = LfsFileSystem::Mount(disk.get(), cfg);
  ASSERT_TRUE(remounted.ok()) << "crash point " << GetParam() << ": "
                              << remounted.status().ToString();
  fs = std::move(remounted).value();

  // Invariant 1: everything in the last completed checkpoint is present and
  // intact, unless an unlink was issued later (roll-forward may recover the
  // deletion); an unlinked file is either gone or still fully intact.
  for (const auto& [path, seed] : synced_model) {
    if (unlinked_ever.count(path) == 0) {
      ASSERT_TRUE(fs->Exists(path)) << "crash point " << GetParam() << " lost " << path;
    }
    if (fs->Exists(path)) {
      auto data = fs->ReadFile(path);
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(*data, TestContent(seed, 3000 + seed * 7)) << path;
    }
  }
  // Invariant 2: the namespace is self-consistent — every directory entry
  // resolves to a stat-able inode with a sane link count, and every file is
  // fully readable.
  auto entries = fs->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  for (const DirEntry& e : *entries) {
    auto st = fs->Stat(e.ino);
    ASSERT_TRUE(st.ok()) << "dangling entry " << e.name << " at crash point " << GetParam();
    EXPECT_GE(st->nlink, 1u);
    if (st->type == FileType::kRegular) {
      std::vector<uint8_t> buf(st->size);
      auto n = fs->ReadAt(e.ino, 0, buf);
      ASSERT_TRUE(n.ok()) << e.name;
      EXPECT_EQ(*n, st->size);
    }
  }
  // Invariant 3: the filesystem keeps working after recovery.
  ASSERT_OK(fs->WriteFile("/post_recovery", TestContent(999, 500)));
  ASSERT_OK(fs->Sync());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashPointSweep, ::testing::Range(1, 120, 3));

}  // namespace
}  // namespace lfs
