// Marathon stress: thousands of randomized operations interleaved with
// forced cleaning, checkpoints, crashes at random moments, and remounts —
// finishing with the offline checker as an independent oracle.
//
// Durability contract asserted after every crash:
//   - checkpoint-durable files must exist;
//   - any file that exists must read back as an exact copy OR a prefix of
//     SOME version written since the last checkpoint (recovery may surface
//     any flushed intermediate state, but never a byte of garbage or a mix
//     of two versions).

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "src/lfs/check.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

struct Version {
  uint64_t seed = 0;
  size_t size = 0;
};

// History of a path since the last checkpoint. `versions` lists every
// content state the file has had (oldest first); `existed_at_sync` says
// whether the path was present in the last checkpoint.
struct PathState {
  std::vector<Version> versions;  // content versions written since sync
  bool exists_now = false;
  bool existed_at_sync = false;
  Version sync_version;
};

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, MarathonWithCrashes) {
  LfsConfig cfg = SmallConfig();
  CrashDisk disk(std::make_unique<MemDisk>(cfg.block_size, 12288));  // 12 MB
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  Rng rng(GetParam());

  std::map<std::string, PathState> model;

  auto is_acceptable = [&](const PathState& st, const std::vector<uint8_t>& data) {
    auto matches = [&](const Version& v) {
      std::vector<uint8_t> full = TestContent(v.seed, v.size);
      return data.size() <= full.size() &&
             std::equal(data.begin(), data.end(), full.begin());
    };
    if (st.existed_at_sync && data == TestContent(st.sync_version.seed,
                                                  st.sync_version.size)) {
      return true;
    }
    for (const Version& v : st.versions) {
      if (matches(v)) {
        return true;
      }
    }
    return false;
  };

  auto crash_and_recover = [&]() {
    disk.CrashNow();
    fs.reset();
    disk.ClearCrash();
    fs = std::move(LfsFileSystem::Mount(&disk, cfg)).value();
    for (auto it = model.begin(); it != model.end();) {
      PathState& st = it->second;
      const std::string& path = it->first;
      bool exists = fs->Exists(path);
      if (st.existed_at_sync && st.exists_now && st.versions.empty()) {
        // Untouched since the checkpoint: must exist, exactly.
        ASSERT_TRUE(exists) << path << " was durable and untouched but vanished";
      }
      if (!exists) {
        it = model.erase(it);
        continue;
      }
      auto data = fs->ReadFile(path);
      ASSERT_TRUE(data.ok()) << path;
      ASSERT_TRUE(is_acceptable(st, *data))
          << path << ": recovered " << data->size()
          << " bytes matching no version written since the checkpoint";
      // Canonicalize: rewrite with a fresh deterministic version so the
      // in-memory model is exact again.
      Version v{GetParam() * 7919 + st.versions.size() + it->first.size() * 131, 2048};
      auto ino = fs->Lookup(path);
      ASSERT_TRUE(ino.ok());
      ASSERT_TRUE(fs->Truncate(*ino, 0).ok());
      std::vector<uint8_t> fresh = TestContent(v.seed, v.size);
      ASSERT_TRUE(fs->WriteAt(*ino, 0, fresh).ok());
      st.versions = {v};
      st.exists_now = true;
      st.existed_at_sync = false;
      ++it;
    }
    // Untracked survivors (creations the model dropped): remove them.
    auto entries = fs->ReadDir("/");
    ASSERT_TRUE(entries.ok());
    for (const DirEntry& e : *entries) {
      std::string path = "/" + e.name;
      if (model.count(path) == 0) {
        ASSERT_TRUE(fs->Unlink(path).ok()) << path;
      }
    }
    // Make the canonicalized state durable: without this, a second crash
    // could legitimately resurface pre-canonicalization versions that the
    // model no longer tracks.
    ASSERT_TRUE(fs->Sync().ok());
    for (auto& [p, ps] : model) {
      ps.existed_at_sync = ps.exists_now;
      if (ps.exists_now && !ps.versions.empty()) {
        ps.sync_version = ps.versions.back();
      }
    }
  };

  const int kSteps = 1200;
  for (int i = 0; i < kSteps; i++) {
    uint64_t op = rng.NextBelow(100);
    std::string path = "/s" + std::to_string(rng.NextBelow(25));
    PathState& st = model[path];
    if (op < 45) {
      Version v{GetParam() * 100000 + static_cast<uint64_t>(i), 1 + rng.NextBelow(20000)};
      std::vector<uint8_t> content = TestContent(v.seed, v.size);
      if (st.exists_now) {
        auto ino = fs->Lookup(path);
        ASSERT_TRUE(ino.ok()) << path;
        ASSERT_TRUE(fs->Truncate(*ino, 0).ok());
        ASSERT_TRUE(fs->WriteAt(*ino, 0, content).ok());
      } else {
        ASSERT_TRUE(fs->WriteFile(path, content).ok());
      }
      st.versions.push_back(v);
      st.exists_now = true;
    } else if (op < 60) {
      if (st.exists_now) {
        ASSERT_TRUE(fs->Unlink(path).ok());
        st.exists_now = false;
        // The last version may still be recovered after a crash; keep the
        // history so recovery of the pre-unlink state stays acceptable.
      }
    } else if (op < 72) {
      ASSERT_TRUE(fs->Sync().ok());
      for (auto& [p, ps] : model) {
        ps.existed_at_sync = ps.exists_now;
        if (ps.exists_now && !ps.versions.empty()) {
          ps.sync_version = ps.versions.back();
        }
        ps.versions.clear();
        if (ps.exists_now) {
          ps.versions.push_back(ps.sync_version);
        }
      }
    } else if (op < 82) {
      ASSERT_TRUE(fs->ForceClean().ok());
    } else if (op < 94) {
      // Live verification of a random existing file.
      if (st.exists_now && !st.versions.empty()) {
        auto data = fs->ReadFile(path);
        ASSERT_TRUE(data.ok()) << path;
        const Version& v = st.versions.back();
        EXPECT_EQ(*data, TestContent(v.seed, v.size)) << path;
      }
    } else {
      crash_and_recover();
    }
  }

  // Final: checkpoint, verify the tracked universe, offline-check the image.
  ASSERT_TRUE(fs->Sync().ok());
  for (const auto& [path, st] : model) {
    if (!st.exists_now) {
      EXPECT_FALSE(fs->Exists(path)) << path;
      continue;
    }
    ASSERT_FALSE(st.versions.empty()) << path;
    auto data = fs->ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    const Version& v = st.versions.back();
    EXPECT_EQ(*data, TestContent(v.seed, v.size)) << path;
  }
  ASSERT_TRUE(fs->Unmount().ok());
  fs.reset();
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->errors, 0u) << report->Summary();
  for (const auto& m : report->messages) {
    ADD_FAILURE() << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace lfs
