// Fleet service-layer tests: multi-volume lifecycle, tenant isolation
// (quota and admission), deterministic backpressure ordering through the
// event-loop pipeline, fair-share cleaning, and a seeded concurrent storm
// with a per-tenant differential oracle and per-volume lfsck on teardown.
//
// The storm runs under ThreadSanitizer in CI. The nightly fleet-soak job
// re-runs it with LFS_FLEET_SOAK_OPS / LFS_FLEET_SEED cranked up; when a
// run fails, the test writes a reproducer config (seed, op count, tenant
// layout) into $LFS_FLEET_ARTIFACTS so the failure travels as an artifact.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fleet/event_loop.h"
#include "src/fleet/fleet.h"
#include "src/lfs/check.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace lfs::fleet {
namespace {

using ::lfs::testing::SmallConfig;

// Storm knobs, overridable by the nightly soak job.
uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = getenv(name);
  return v != nullptr ? static_cast<uint64_t>(atoll(v)) : fallback;
}

FleetConfig SmallFleet(uint32_t volumes, bool concurrent = false,
                       uint64_t disk_bytes = 8ull * 1024 * 1024) {
  LfsConfig lfs = SmallConfig();
  if (concurrent) {
    lfs.segment_blocks = 32;
    lfs.clean_lo = 6;
    lfs.clean_hi = 10;
    lfs.segments_per_pass = 6;
    lfs.write_buffer_blocks = 32;
    lfs.concurrent = true;
  }
  return UniformFleetConfig(volumes, disk_bytes, lfs);
}

TenantConfig Tenant(const std::string& name, uint32_t volume,
                    uint64_t max_blocks = 0, uint32_t max_inodes = 0) {
  TenantConfig tc;
  tc.name = name;
  tc.volume = volume;
  tc.max_blocks = max_blocks;
  tc.max_inodes = max_inodes;
  return tc;
}

std::vector<uint8_t> Bytes(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

// ---------------------------------------------------------------------------
// Token bucket

TEST(TokenBucketTest, RefillsDeterministicallyInProvidedTime) {
  TokenBucket bucket(10.0, 2.0);  // 10 tokens/sec, burst 2
  EXPECT_TRUE(bucket.TryConsume(0.0, 1.0));
  EXPECT_TRUE(bucket.TryConsume(0.0, 1.0));
  EXPECT_FALSE(bucket.TryConsume(0.0, 1.0));  // burst exhausted
  // 0.1 sec refills exactly one token.
  EXPECT_NEAR(bucket.DelayUntilAvailable(0.0, 1.0), 0.1, 1e-9);
  EXPECT_TRUE(bucket.TryConsume(0.1, 1.0));
  EXPECT_FALSE(bucket.TryConsume(0.1, 1.0));
  // Reservations may drive the balance negative; later ops queue behind.
  bucket.ConsumeAt(0.1, 1.0);
  EXPECT_NEAR(bucket.DelayUntilAvailable(0.1, 1.0), 0.2, 1e-9);
}

TEST(TokenBucketTest, NonPositiveRateDisablesAdmission) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(bucket.TryConsume(0.0, 1.0));
  }
  EXPECT_EQ(bucket.DelayUntilAvailable(0.0, 1.0), 0.0);
}

// ---------------------------------------------------------------------------
// Lifecycle

TEST(FleetLifecycleTest, MountUnmountRemountPreservesDataAndPassesLfsck) {
  auto fleet = std::move(Fleet::Create(SmallFleet(2))).value();
  ASSERT_TRUE(fleet->AddTenant(Tenant("alpha", 0)).ok());
  ASSERT_TRUE(fleet->AddTenant(Tenant("beta", 1)).ok());

  auto data_a = Bytes(3000, 0xAA);
  auto data_b = Bytes(5000, 0xBB);
  auto ino_a = fleet->Create("alpha", "/file");
  ASSERT_TRUE(ino_a.ok()) << ino_a.status().ToString();
  ASSERT_TRUE(fleet->WriteAt("alpha", *ino_a, 0, data_a).ok());
  auto ino_b = fleet->Create("beta", "/file");
  ASSERT_TRUE(ino_b.ok());
  ASSERT_TRUE(fleet->WriteAt("beta", *ino_b, 0, data_b).ok());

  ASSERT_TRUE(fleet->SyncAll().ok());
  ASSERT_TRUE(fleet->UnmountAll().ok());

  // Offline oracle over the raw media while nothing is mounted.
  for (uint32_t v = 0; v < fleet->num_volumes(); v++) {
    auto report = CheckLfsImage(fleet->volume(v)->raw_device());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << "volume " << v << ": " << report->Summary();
  }

  // Unmounted volumes reject tenant traffic with a clear error.
  EXPECT_EQ(fleet->Lookup("alpha", "/file").status().code(),
            StatusCode::kReadOnly);

  ASSERT_TRUE(fleet->MountAll().ok());
  auto found = fleet->Lookup("alpha", "/file");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> got(data_a.size());
  auto n = fleet->ReadAt("alpha", *found, 0, got);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data_a.size());
  EXPECT_EQ(got, data_a);

  auto found_b = fleet->Lookup("beta", "/file");
  ASSERT_TRUE(found_b.ok());
  std::vector<uint8_t> got_b(data_b.size());
  ASSERT_TRUE(fleet->ReadAt("beta", *found_b, 0, got_b).ok());
  EXPECT_EQ(got_b, data_b);

  // Unmount is idempotent.
  ASSERT_TRUE(fleet->UnmountAll().ok());
  ASSERT_TRUE(fleet->UnmountAll().ok());
}

TEST(FleetLifecycleTest, TenantRegistrationValidation) {
  auto fleet = std::move(Fleet::Create(SmallFleet(1))).value();
  ASSERT_TRUE(fleet->AddTenant(Tenant("a", 0)).ok());
  EXPECT_EQ(fleet->AddTenant(Tenant("a", 0)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(fleet->AddTenant(Tenant("b", 7)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet->AddTenant(Tenant("", 0)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet->AddTenant(Tenant("x/y", 0)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet->Create("ghost", "/f").status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Quota isolation

TEST(FleetQuotaTest, OneTenantsExhaustionNeverFailsItsNeighbor) {
  auto fleet = std::move(Fleet::Create(SmallFleet(1))).value();
  // Both tenants share volume 0. "hog" may hold 8 blocks (8 KB at the
  // 1-KB test block size); "calm" is unlimited.
  ASSERT_TRUE(fleet->AddTenant(Tenant("hog", 0, /*max_blocks=*/8)).ok());
  ASSERT_TRUE(fleet->AddTenant(Tenant("calm", 0)).ok());

  auto hog_ino = std::move(fleet->Create("hog", "/f")).value();
  // 8 blocks fit...
  ASSERT_TRUE(fleet->WriteAt("hog", hog_ino, 0, Bytes(8 * 1024, 1)).ok());
  // ...the 9th does not: ENOSPC-style denial before the volume is touched.
  Status over = fleet->WriteAt("hog", hog_ino, 8 * 1024, Bytes(1024, 2));
  EXPECT_EQ(over.code(), StatusCode::kNoSpace) << over.ToString();
  EXPECT_GE(fleet->tenant("hog")->ops_quota_denied.load(), 1u);

  // The neighbor is untouched by hog's exhaustion.
  auto calm_ino = std::move(fleet->Create("calm", "/f")).value();
  EXPECT_TRUE(fleet->WriteAt("calm", calm_ino, 0, Bytes(64 * 1024, 3)).ok());
  EXPECT_EQ(fleet->tenant("calm")->ops_quota_denied.load(), 0u);
  EXPECT_EQ(fleet->tenant("calm")->ops_failed.load(), 0u);

  // Freeing space restores the hog's budget: unlink credits the blocks.
  ASSERT_TRUE(fleet->Unlink("hog", "/f").ok());
  EXPECT_EQ(fleet->tenant("hog")->blocks_used(), 0u);
  auto again = fleet->Create("hog", "/g");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(fleet->WriteAt("hog", *again, 0, Bytes(4 * 1024, 4)).ok());

  // Truncate credits shrinkage too.
  ASSERT_TRUE(fleet->Truncate("hog", *again, 1024).ok());
  EXPECT_EQ(fleet->tenant("hog")->blocks_used(), 1u);
}

TEST(FleetQuotaTest, InodeQuotaBoundsNamespaceGrowth) {
  auto fleet = std::move(Fleet::Create(SmallFleet(1))).value();
  ASSERT_TRUE(fleet->AddTenant(Tenant("t", 0, 0, /*max_inodes=*/2)).ok());
  ASSERT_TRUE(fleet->Create("t", "/a").ok());
  ASSERT_TRUE(fleet->Create("t", "/b").ok());
  EXPECT_EQ(fleet->Create("t", "/c").status().code(), StatusCode::kNoSpace);
  // Unlinking one frees the slot.
  ASSERT_TRUE(fleet->Unlink("t", "/a").ok());
  EXPECT_TRUE(fleet->Create("t", "/c").ok());
}

// ---------------------------------------------------------------------------
// Deterministic pipeline: admission FIFO + backpressure shedding

TEST(FleetSchedulerTest, AdmissionIsFifoAndBackpressureShedsExcess) {
  FleetConfig cfg = SmallFleet(1);
  cfg.front_door_admission = false;  // the scheduler reserves admission
  EventLoop* loop_ptr = nullptr;
  cfg.now_fn = [&loop_ptr]() { return loop_ptr ? loop_ptr->now() : 0.0; };
  auto fleet = std::move(Fleet::Create(cfg)).value();

  TenantConfig tc = Tenant("t", 0);
  tc.ops_per_sec = 10.0;  // one admission every 100 ms
  tc.burst_ops = 1.0;
  tc.max_queue_depth = 4;
  ASSERT_TRUE(fleet->AddTenant(tc).ok());

  FleetScheduler sched(fleet.get(), SchedulerOptions{});
  loop_ptr = &sched.loop();

  struct Done {
    int id;
    double at;
    StatusCode code;
  };
  std::vector<Done> done;
  for (int i = 0; i < 6; i++) {
    FleetScheduler::Op op;
    op.tenant = "t";
    op.cls = OpClass::kCreate;
    op.body = [&fleet, i]() {
      return fleet->Create("t", "/f" + std::to_string(i)).status();
    };
    op.done = [&done, i](double now, const Status& st) {
      done.push_back({i, now, st.code()});
    };
    sched.Submit(0.0, std::move(op));
  }
  sched.Run();

  ASSERT_EQ(done.size(), 6u);
  // Ops 4 and 5 found the tenant queue full (depth 4) and were shed
  // immediately with kBusy, before any admission wait.
  EXPECT_EQ(done[0].id, 4);
  EXPECT_EQ(done[0].code, StatusCode::kBusy);
  EXPECT_EQ(done[1].id, 5);
  EXPECT_EQ(done[1].code, StatusCode::kBusy);
  EXPECT_EQ(done[0].at, 0.0);
  EXPECT_EQ(sched.ops_rejected(), 2u);

  // The four admitted ops completed in submission order (token-bucket
  // reservations mature FIFO), spaced ~one refill (100 ms) apart.
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(done[2 + i].id, i);
    EXPECT_EQ(done[2 + i].code, StatusCode::kOk);
  }
  for (int i = 0; i < 3; i++) {
    double gap = done[3 + i].at - done[2 + i].at;
    EXPECT_NEAR(gap, 0.1, 0.05) << "admission spacing between op " << i
                                << " and " << i + 1;
  }
  EXPECT_EQ(sched.ops_done(), 4u);
  EXPECT_EQ(fleet->tenant("t")->queued.load(), 0u);
}

// ---------------------------------------------------------------------------
// Fair-share cleaning

TEST(FleetCleanTest, CoordinatorGrantsPassesToTheDirtyVolumeOnly) {
  // Tiny volumes (32 segments of 16 KB) so churn actually erodes the clean
  // pool below clean_hi and opens a deficit the coordinator must notice.
  auto fleet = std::move(
      Fleet::Create(SmallFleet(2, false, 512ull * 1024)))
                   .value();
  ASSERT_TRUE(fleet->AddTenant(Tenant("busy", 0)).ok());
  ASSERT_TRUE(fleet->AddTenant(Tenant("idle", 1)).ok());

  // Fragment volume 0: waves of small files where only every 4th survives,
  // leaving partially-live segments the checkpoint harvest (which reclaims
  // only fully-dead segments for free) cannot touch. The per-wave SyncAll
  // also moves the roll-forward protection boundary past each wave, so the
  // fragmented segments are selectable victims. Volume 1 stays untouched.
  auto data = Bytes(4 * 1024, 0x5A);
  int file_id = 0;
  for (int wave = 0; wave < 40 && fleet->volume(0)->CleanDeficit() == 0;
       wave++) {
    for (int j = 0; j < 8; j++, file_id++) {
      std::string name = "/f" + std::to_string(file_id);
      auto ino = fleet->Create("busy", name);
      ASSERT_TRUE(ino.ok()) << ino.status().ToString();
      ASSERT_TRUE(fleet->WriteAt("busy", *ino, 0, data).ok());
      if (j % 4 != 0) {
        ASSERT_TRUE(fleet->Unlink("busy", name).ok());
      }
    }
    ASSERT_TRUE(fleet->SyncAll().ok());
  }
  ASSERT_GT(fleet->volume(0)->CleanDeficit(), 0u);
  ASSERT_EQ(fleet->volume(1)->CleanDeficit(), 0u);

  uint32_t reclaimed = fleet->FairShareCleanRound();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_GT(fleet->volume(0)->cleaner_passes.load(), 0u);
  EXPECT_EQ(fleet->volume(1)->cleaner_passes.load(), 0u);
}

// ---------------------------------------------------------------------------
// Seeded concurrent storm + differential oracle + lfsck

// Verification reads go through the same admitted front door as the storm,
// so an admission-tight tenant can answer kBusy; the fleet's default clock
// is host-monotonic, so waiting genuinely refills the bucket.
Result<uint64_t> ReadRetryBusy(Fleet* fleet, const std::string& tenant,
                               InodeNum ino, std::span<uint8_t> out) {
  for (int attempt = 0; attempt < 5000; attempt++) {
    auto n = fleet->ReadAt(tenant, ino, 0, out);
    if (n.ok() || n.status().code() != StatusCode::kBusy) {
      return n;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return BusyError("verification retry budget exhausted");
}

struct StormParams {
  uint64_t seed = 42;
  uint64_t ops_per_tenant = 120;
  uint32_t volumes = 2;
  uint32_t tenants = 4;
  uint64_t qos = 0;  // nonzero: adaptive + partial compaction + cleaner QoS
};

// Writes a reproducer config for a failed storm so the nightly soak job can
// upload it as an artifact (path from $LFS_FLEET_ARTIFACTS, default skipped).
void WriteStormRepro(const StormParams& p, const std::string& why) {
  const char* dir = getenv("LFS_FLEET_ARTIFACTS");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  std::string path =
      std::string(dir) + "/fleet_storm_repro_seed" + std::to_string(p.seed) + ".txt";
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return;
  }
  fprintf(f,
          "# fleet storm failure reproducer\n"
          "# rerun: LFS_FLEET_SEED=%" PRIu64 " LFS_FLEET_SOAK_OPS=%" PRIu64
          " LFS_FLEET_QOS=%" PRIu64
          " ./fleet_test --gtest_filter='*SeededStorm*'\n"
          "seed=%" PRIu64 "\nops_per_tenant=%" PRIu64
          "\nvolumes=%u\ntenants=%u\nqos=%" PRIu64 "\nfailure=%s\n",
          p.seed, p.ops_per_tenant, p.qos, p.seed, p.ops_per_tenant, p.volumes,
          p.tenants, p.qos, why.c_str());
  fclose(f);
}

TEST(FleetStormTest, SeededStormSurvivesOracleAndLfsck) {
  StormParams p;
  p.seed = EnvOr("LFS_FLEET_SEED", 42);
  p.ops_per_tenant = EnvOr("LFS_FLEET_SOAK_OPS", 120);
  p.qos = EnvOr("LFS_FLEET_QOS", 0);

  FleetConfig cfg = SmallFleet(p.volumes, /*concurrent=*/true);
  if (p.qos != 0) {
    // Nightly cleaner-soak mode: the same storm with adaptive cleaning,
    // partial compaction, and a throttled cleaner on every volume, so the
    // governor/drain/QoS paths face the concurrent front end under TSan.
    cfg.fine_grained_reclamation = true;
    cfg.cleaner_qos_bytes_per_sec = 4.0 * 1024 * 1024;
  }
  auto fleet = std::move(Fleet::Create(cfg)).value();
  for (uint32_t t = 0; t < p.tenants; t++) {
    TenantConfig tc = Tenant("t" + std::to_string(t), t % p.volumes);
    if (t == 0) {
      // One quota-tight tenant: its threads hit kNoSpace and recover by
      // unlinking, churning the charge/credit path under contention.
      tc.max_blocks = 64;
      tc.max_inodes = 8;
    }
    if (t == 1) {
      // One admission-tight tenant: its thread sees kBusy under the host
      // clock and retries, churning the token bucket under contention.
      tc.ops_per_sec = 2000.0;
      tc.burst_ops = 16.0;
    }
    ASSERT_TRUE(fleet->AddTenant(tc).ok());
  }

  // One thread per tenant; each owns its namespace outright, so an exact
  // in-memory reference model needs no cross-thread coordination while the
  // volumes underneath (log, cleaner, shared by two tenants each) race.
  struct FileModel {
    InodeNum ino = 0;
    std::vector<uint8_t> content;
  };
  std::vector<std::map<std::string, FileModel>> models(p.tenants);
  std::vector<uint64_t> busy_seen(p.tenants, 0), nospace_seen(p.tenants, 0);

  auto worker = [&](uint32_t t) {
    std::string tenant = "t" + std::to_string(t);
    Rng rng(p.seed * 7919 + t);
    auto& model = models[t];
    for (uint64_t i = 0; i < p.ops_per_tenant; i++) {
      double dice = rng.NextDouble();
      if (dice < 0.35 || model.empty()) {
        // Create a file and write a random-sized payload.
        std::string name = "/f" + std::to_string(rng.NextBelow(32));
        if (model.count(name) != 0) {
          continue;
        }
        auto ino = fleet->Create(tenant, name);
        if (!ino.ok()) {
          if (ino.status().code() == StatusCode::kNoSpace) nospace_seen[t]++;
          if (ino.status().code() == StatusCode::kBusy) busy_seen[t]++;
          continue;
        }
        size_t size = 512 + rng.NextBelow(8 * 1024);
        std::vector<uint8_t> data(size);
        for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
        Status st = fleet->WriteAt(tenant, *ino, 0, data);
        if (st.ok()) {
          model[name] = FileModel{*ino, std::move(data)};
        } else {
          if (st.code() == StatusCode::kNoSpace) nospace_seen[t]++;
          if (st.code() == StatusCode::kBusy) busy_seen[t]++;
          // The file exists but is empty (the write never landed).
          model[name] = FileModel{*ino, {}};
        }
      } else if (dice < 0.55) {
        // Overwrite a random prefix of an existing file.
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        size_t size = 1 + rng.NextBelow(2 * 1024);
        std::vector<uint8_t> data(size);
        for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
        Status st = fleet->WriteAt(tenant, it->second.ino, 0, data);
        if (st.ok()) {
          if (it->second.content.size() < size) it->second.content.resize(size);
          std::copy(data.begin(), data.end(), it->second.content.begin());
        } else {
          if (st.code() == StatusCode::kNoSpace) nospace_seen[t]++;
          if (st.code() == StatusCode::kBusy) busy_seen[t]++;
        }
      } else if (dice < 0.7) {
        // Read back a file and verify against the model immediately.
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        std::vector<uint8_t> got(it->second.content.size());
        if (got.empty()) {
          continue;
        }
        auto n = fleet->ReadAt(tenant, it->second.ino, 0, got);
        if (n.ok()) {
          EXPECT_EQ(*n, got.size()) << tenant << it->first;
          EXPECT_EQ(got, it->second.content) << tenant << it->first;
        } else if (n.status().code() == StatusCode::kBusy) {
          busy_seen[t]++;
        }
      } else if (dice < 0.85) {
        // Rename within the namespace.
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        std::string to = "/r" + std::to_string(rng.NextBelow(32));
        if (model.count(to) != 0) {
          continue;  // keep the model simple: no replacing renames
        }
        Status st = fleet->Rename(tenant, it->first, to);
        if (st.ok()) {
          model[to] = std::move(it->second);
          model.erase(it);
        } else if (st.code() == StatusCode::kBusy) {
          busy_seen[t]++;
        }
      } else {
        // Unlink.
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        Status st = fleet->Unlink(tenant, it->first);
        if (st.ok()) {
          model.erase(it);
        } else if (st.code() == StatusCode::kBusy) {
          busy_seen[t]++;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < p.tenants; t++) {
    threads.emplace_back(worker, t);
  }
  for (auto& th : threads) {
    th.join();
  }

  if (getenv("LFS_DBG_NSCHECK") != nullptr) {
    // Debug probe: walk every tenant dir in the mounted (in-memory) state and
    // stat every entry; a failure here means namespace state is already
    // inconsistent before any checkpoint serialization runs.
    for (uint32_t v = 0; v < fleet->num_volumes(); v++) {
      LfsFileSystem* fs = fleet->volume(v)->fs();
      auto root = fs->ReadDir("/");
      ASSERT_TRUE(root.ok());
      for (const auto& de : *root) {
        auto sub = fs->ReadDir("/" + de.name);
        ASSERT_TRUE(sub.ok()) << de.name;
        for (const auto& fe : *sub) {
          auto st = fs->Stat(fe.ino);
          EXPECT_TRUE(st.ok()) << "IN-MEMORY dangling: vol " << v << " dir "
                               << de.name << " entry " << fe.name << " ino "
                               << fe.ino << ": " << st.status().ToString();
        }
      }
    }
  }

  // The quota-tight tenant must actually have hit its quota (the storm is
  // supposed to exercise exhaustion, not dodge it).
  EXPECT_GT(nospace_seen[0] + fleet->tenant("t0")->ops_quota_denied.load(), 0u);

  // Differential oracle: every surviving file reads back exactly as its
  // owner's model says, and per-tenant block accounting matches the model.
  for (uint32_t t = 0; t < p.tenants; t++) {
    std::string tenant = "t" + std::to_string(t);
    uint64_t expect_blocks = 0;
    for (const auto& [name, fm] : models[t]) {
      auto found = fleet->Lookup(tenant, name);
      ASSERT_TRUE(found.ok()) << tenant << name << ": " << found.status().ToString();
      EXPECT_EQ(*found, fm.ino) << tenant << name;
      std::vector<uint8_t> got(fm.content.size());
      if (!got.empty()) {
        auto n = ReadRetryBusy(fleet.get(), tenant, fm.ino, got);
        ASSERT_TRUE(n.ok()) << tenant << name << ": " << n.status().ToString();
        EXPECT_EQ(got, fm.content) << tenant << name;
      }
      uint32_t bs = cfg.volumes[0].lfs.block_size;
      expect_blocks += (fm.content.size() + bs - 1) / bs;
    }
    EXPECT_EQ(fleet->tenant(tenant)->blocks_used(), expect_blocks) << tenant;
    EXPECT_EQ(fleet->tenant(tenant)->inodes_used(), models[t].size()) << tenant;
  }

  // Teardown oracle: clean unmount, offline lfsck per volume, remount, and
  // spot-check contents survived.
  ASSERT_TRUE(fleet->SyncAll().ok());
  ASSERT_TRUE(fleet->UnmountAll().ok());
  for (uint32_t v = 0; v < fleet->num_volumes(); v++) {
    auto report = CheckLfsImage(fleet->volume(v)->raw_device());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    std::string detail;
    for (const auto& m : report->messages) detail += "\n  " + m;
    EXPECT_TRUE(report->ok())
        << "volume " << v << ": " << report->Summary() << detail;
  }
  ASSERT_TRUE(fleet->MountAll().ok());
  for (uint32_t t = 0; t < p.tenants; t++) {
    std::string tenant = "t" + std::to_string(t);
    for (const auto& [name, fm] : models[t]) {
      auto found = fleet->Lookup(tenant, name);
      ASSERT_TRUE(found.ok()) << tenant << name;
      std::vector<uint8_t> got(fm.content.size());
      if (!got.empty()) {
        ASSERT_TRUE(ReadRetryBusy(fleet.get(), tenant, fm.ino, got).ok())
            << tenant << name;
        EXPECT_EQ(got, fm.content) << tenant << name;
      }
    }
  }

  if (::testing::Test::HasFailure()) {
    WriteStormRepro(p, "storm oracle or lfsck failure");
  }
}

}  // namespace
}  // namespace lfs::fleet
