// Unit tests for the LFS in-memory components: InodeMap (allocation,
// versioned uids, chunk persistence), SegUsage (accounting invariants,
// state machine, chunking), and SegmentWriter (partial-write emission,
// capacity limits, buffered read-back, segment advance, reserve policy).

#include <gtest/gtest.h>

#include "src/disk/mem_disk.h"
#include "src/lfs/inode_map.h"
#include "src/lfs/seg_usage.h"
#include "src/lfs/segment_writer.h"
#include "src/lfs/stats.h"

namespace lfs {
namespace {

// --- InodeMap -------------------------------------------------------------------

TEST(InodeMapTest, AllocatesDistinctNumbersStartingAtOne) {
  InodeMap imap(1024, 170);
  auto a = imap.Allocate();
  auto b = imap.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_NE(*a, *b);
}

TEST(InodeMapTest, FreeBumpsVersionAndReusesNumber) {
  InodeMap imap(1024, 170);
  InodeNum ino = *imap.Allocate();
  imap.SetLocation(ino, 500, 3);
  uint32_t v1 = imap.Get(ino).version;
  EXPECT_TRUE(imap.IsAllocated(ino));
  imap.Free(ino);
  EXPECT_FALSE(imap.IsAllocated(ino));
  EXPECT_GT(imap.Get(ino).version, v1);  // uid changed: old blocks are dead
  InodeNum again = *imap.Allocate();
  EXPECT_EQ(again, ino);  // freed numbers are reused
  EXPECT_GT(imap.Get(again).version, v1);
}

TEST(InodeMapTest, ExhaustionReturnsNoInodes) {
  InodeMap imap(4, 170);
  ASSERT_TRUE(imap.Allocate().ok());  // 1
  ASSERT_TRUE(imap.Allocate().ok());  // 2
  ASSERT_TRUE(imap.Allocate().ok());  // 3
  auto r = imap.Allocate();           // 4 is out of range (max_inodes = 4, 0 reserved)
  EXPECT_EQ(r.status().code(), StatusCode::kNoInodes);
}

TEST(InodeMapTest, ChunkRoundTripPreservesEntries) {
  InodeMap imap(1024, 4);  // tiny chunks: 4 entries each
  for (int i = 0; i < 10; i++) {
    InodeNum ino = *imap.Allocate();
    imap.SetLocation(ino, 1000 + ino, static_cast<uint16_t>(ino % 5));
  }
  EXPECT_FALSE(imap.dirty_chunks().empty());

  InodeMap reloaded(1024, 4);
  std::vector<uint8_t> block(4 * kImapEntrySize);
  for (uint32_t c = 0; c < 3; c++) {
    imap.EncodeChunk(c, block);
    reloaded.LoadChunk(c, block, /*ninodes_limit=*/11);
  }
  reloaded.RebuildFreeList();
  for (InodeNum ino = 1; ino <= 10; ino++) {
    EXPECT_EQ(reloaded.Get(ino).inode_block, 1000u + ino) << ino;
    EXPECT_EQ(reloaded.Get(ino).slot, ino % 5) << ino;
    EXPECT_TRUE(reloaded.IsAllocated(ino));
  }
  EXPECT_EQ(reloaded.allocated_count(), 10u);
}

TEST(InodeMapTest, RebuildFreeListFindsHoles) {
  InodeMap imap(64, 16);
  for (int i = 0; i < 6; i++) {
    InodeNum ino = *imap.Allocate();
    imap.SetLocation(ino, 100 + ino, 0);
  }
  imap.Free(3);
  imap.Free(5);
  imap.RebuildFreeList();
  // Freed numbers come back first, lowest first.
  EXPECT_EQ(*imap.Allocate(), 3u);
  EXPECT_EQ(*imap.Allocate(), 5u);
  EXPECT_EQ(*imap.Allocate(), 7u);
}

// --- SegUsage -------------------------------------------------------------------

TEST(SegUsageTest, LiveByteAccounting) {
  SegUsage usage(10, 1 << 20, 256);
  EXPECT_EQ(usage.clean_count(), 10u);
  usage.SetState(2, SegState::kActive);
  EXPECT_EQ(usage.clean_count(), 9u);
  usage.AddLive(2, 4096, 100);
  usage.AddLive(2, 4096, 50);  // older mtime must not regress last_write
  EXPECT_EQ(usage.Get(2).live_bytes, 8192u);
  EXPECT_EQ(usage.Get(2).last_write, 100u);
  EXPECT_EQ(usage.TotalLiveBytes(), 8192u);
  usage.SubLive(2, 4096);
  EXPECT_EQ(usage.Get(2).live_bytes, 4096u);
  usage.SubLive(2, 1 << 20);  // clamps, never underflows
  EXPECT_EQ(usage.Get(2).live_bytes, 0u);
  EXPECT_EQ(usage.TotalLiveBytes(), 0u);
}

TEST(SegUsageTest, CleanTransitionResetsEntry) {
  SegUsage usage(4, 1 << 20, 256);
  usage.SetState(0, SegState::kDirty);
  usage.AddLive(0, 9999, 7);
  usage.SetState(0, SegState::kClean);
  EXPECT_EQ(usage.Get(0).live_bytes, 0u);
  EXPECT_EQ(usage.Get(0).last_write, 0u);
  EXPECT_EQ(usage.clean_count(), 4u);
  EXPECT_EQ(usage.TotalLiveBytes(), 0u);
}

TEST(SegUsageTest, UtilizationAndChunks) {
  SegUsage usage(8, 1024, 4);
  usage.SetState(1, SegState::kDirty);
  usage.AddLive(1, 512, 10);
  EXPECT_DOUBLE_EQ(usage.Utilization(1), 0.5);
  EXPECT_EQ(usage.chunk_of(1), 0u);
  EXPECT_EQ(usage.chunk_of(5), 1u);
  EXPECT_EQ(usage.chunk_count(), 2u);

  std::vector<uint8_t> block(4 * kUsageEntrySize);
  usage.EncodeChunk(0, block);
  SegUsage reloaded(8, 1024, 4);
  reloaded.LoadChunk(0, block);
  reloaded.RecountClean();
  EXPECT_EQ(reloaded.Get(1).live_bytes, 512u);
  EXPECT_EQ(reloaded.Get(1).state, SegState::kDirty);
  EXPECT_EQ(reloaded.clean_count(), 7u);
  EXPECT_EQ(reloaded.TotalLiveBytes(), 512u);
}

// --- SegmentWriter ----------------------------------------------------------------

struct WriterRig {
  static constexpr uint32_t kBs = 512;
  MemDisk disk{kBs, 2048};
  Superblock sb;
  SegUsage usage;
  LfsStats stats;
  SegmentWriter writer;

  WriterRig()
      : sb(std::move(Superblock::Compute(kBs, 2048, 16, 256)).value()),
        usage(sb.nsegments, sb.segment_bytes(), sb.usage_entries_per_chunk()),
        writer(&disk, &sb, &usage, &stats, /*reserve_segments=*/2) {
    usage.SetState(0, SegState::kActive);
    writer.Init(0, 0, 1);
  }

  std::vector<uint8_t> Block(uint8_t fill) { return std::vector<uint8_t>(kBs, fill); }
  SummaryEntry Entry(InodeNum ino, uint64_t fbn) {
    return SummaryEntry{BlockKind::kData, ino, fbn, 1};
  }
};

TEST(SegmentWriterTest, AssignsConsecutiveAddressesWithinPartial) {
  WriterRig rig;
  auto a = rig.writer.Append(rig.Entry(1, 0), rig.Block(1), 10, WriterRig::kBs);
  auto b = rig.writer.Append(rig.Entry(1, 1), rig.Block(2), 11, WriterRig::kBs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a + 1);
  EXPECT_EQ(rig.sb.SegOf(*a), 0u);
  // Address 0 of the partial is the summary block: payload starts at +1.
  EXPECT_EQ(*a, rig.sb.SegmentBase(0) + 1);
}

TEST(SegmentWriterTest, BufferedBlocksReadableBeforeFlush) {
  WriterRig rig;
  auto a = rig.writer.Append(rig.Entry(1, 0), rig.Block(0xAA), 10, WriterRig::kBs);
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> out(WriterRig::kBs);
  ASSERT_TRUE(rig.writer.ReadBuffered(*a, out));
  EXPECT_EQ(out[0], 0xAA);
  ASSERT_TRUE(rig.writer.Flush().ok());
  EXPECT_FALSE(rig.writer.ReadBuffered(*a, out));  // now on disk, not buffered
  ASSERT_TRUE(rig.disk.Read(*a, 1, out).ok());
  EXPECT_EQ(out[0], 0xAA);
}

TEST(SegmentWriterTest, FlushWritesValidSummary) {
  WriterRig rig;
  ASSERT_TRUE(rig.writer.Append(rig.Entry(7, 3), rig.Block(1), 42, WriterRig::kBs).ok());
  ASSERT_TRUE(rig.writer.Append(rig.Entry(7, 4), rig.Block(2), 43, WriterRig::kBs).ok());
  ASSERT_TRUE(rig.writer.Flush().ok());
  std::vector<uint8_t> sum_block(WriterRig::kBs);
  ASSERT_TRUE(rig.disk.Read(rig.sb.SegmentBase(0), 1, sum_block).ok());
  auto sum = SegmentSummary::DecodeFrom(sum_block);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->seq, 1u);
  EXPECT_EQ(sum->youngest_mtime, 43u);
  ASSERT_EQ(sum->entries.size(), 2u);
  EXPECT_EQ(sum->entries[0].ino, 7u);
  EXPECT_EQ(sum->entries[1].fbn, 4u);
}

TEST(SegmentWriterTest, AdvancesAcrossSegments) {
  WriterRig rig;
  // Fill well past one 16-block segment.
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(rig.writer
                    .Append(rig.Entry(1, static_cast<uint64_t>(i)), rig.Block(1), 10,
                            WriterRig::kBs)
                    .ok());
  }
  ASSERT_TRUE(rig.writer.Flush().ok());
  EXPECT_GT(rig.writer.current_segment(), 0u);
  EXPECT_EQ(rig.usage.Get(0).state, SegState::kDirty);
  EXPECT_EQ(rig.usage.Get(rig.writer.current_segment()).state, SegState::kActive);
  EXPECT_GT(rig.writer.next_seq(), 1u);
}

TEST(SegmentWriterTest, ReserveBlocksOrdinaryWrites) {
  WriterRig rig;
  // Dirty all segments except the reserve.
  uint32_t n = rig.sb.nsegments;
  for (SegNo s = 1; s < n; s++) {
    if (rig.usage.clean_count() > 2) {
      rig.usage.SetState(s, SegState::kDirty);
    }
  }
  ASSERT_EQ(rig.usage.clean_count(), 2u);
  EXPECT_EQ(rig.writer.usable_clean_segments(), 0u);
  // Fill the active segment; the next advance must fail for ordinary writes.
  Status st = OkStatus();
  for (int i = 0; i < 40 && st.ok(); i++) {
    st = rig.writer.Append(rig.Entry(1, static_cast<uint64_t>(i)), rig.Block(1), 1,
                           WriterRig::kBs)
             .status();
  }
  EXPECT_EQ(st.code(), StatusCode::kNoSpace);
  // Cleaning mode may dip into the reserve.
  rig.writer.set_cleaning(true);
  EXPECT_TRUE(rig.writer.Append(rig.Entry(2, 0), rig.Block(3), 1, WriterRig::kBs).ok());
}

TEST(SegmentWriterTest, LiveBytesAccounted) {
  WriterRig rig;
  ASSERT_TRUE(rig.writer.Append(rig.Entry(1, 0), rig.Block(1), 5, 100).ok());
  EXPECT_EQ(rig.usage.Get(0).live_bytes, 100u);  // caller-specified live bytes
  EXPECT_EQ(rig.usage.Get(0).last_write, 5u);
  EXPECT_EQ(rig.stats.log_bytes_by_kind[static_cast<size_t>(BlockKind::kData)],
            WriterRig::kBs);
  EXPECT_EQ(rig.stats.new_payload_bytes, WriterRig::kBs);
  EXPECT_EQ(rig.stats.clean_write_bytes, 0u);
  rig.writer.set_cleaning(true);
  ASSERT_TRUE(rig.writer.Append(rig.Entry(1, 1), rig.Block(1), 6, 100).ok());
  EXPECT_EQ(rig.stats.clean_write_bytes, WriterRig::kBs);
}

TEST(StatsTest, WriteCostDefinition) {
  LfsStats st;
  st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kData)] = 1000;
  st.new_payload_bytes = 1000;
  EXPECT_DOUBLE_EQ(st.WriteCost(), 1.0);  // pure logging, no overheads
  st.summary_bytes = 100;
  st.clean_read_bytes = 400;
  st.clean_write_bytes = 500;
  st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kData)] += 500;
  // (1000 payload + 500 cleaned + 100 summaries + 400 cleaner reads) / 1000
  EXPECT_DOUBLE_EQ(st.WriteCost(), 2.0);
}

}  // namespace
}  // namespace lfs
