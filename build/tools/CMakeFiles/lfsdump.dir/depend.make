# Empty dependencies file for lfsdump.
# This may be replaced when dependencies are built.
