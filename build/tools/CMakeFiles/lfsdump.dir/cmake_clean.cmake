file(REMOVE_RECURSE
  "CMakeFiles/lfsdump.dir/lfsdump.cpp.o"
  "CMakeFiles/lfsdump.dir/lfsdump.cpp.o.d"
  "lfsdump"
  "lfsdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
