# Empty dependencies file for mkfs_lfs.
# This may be replaced when dependencies are built.
