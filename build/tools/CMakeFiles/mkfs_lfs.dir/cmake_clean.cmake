file(REMOVE_RECURSE
  "CMakeFiles/mkfs_lfs.dir/mkfs_lfs.cpp.o"
  "CMakeFiles/mkfs_lfs.dir/mkfs_lfs.cpp.o.d"
  "mkfs_lfs"
  "mkfs_lfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkfs_lfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
