# Empty compiler generated dependencies file for lfsck.
# This may be replaced when dependencies are built.
