file(REMOVE_RECURSE
  "CMakeFiles/lfsck.dir/lfsck.cpp.o"
  "CMakeFiles/lfsck.dir/lfsck.cpp.o.d"
  "lfsck"
  "lfsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
