file(REMOVE_RECURSE
  "CMakeFiles/lfs_invariants_test.dir/lfs_invariants_test.cpp.o"
  "CMakeFiles/lfs_invariants_test.dir/lfs_invariants_test.cpp.o.d"
  "lfs_invariants_test"
  "lfs_invariants_test.pdb"
  "lfs_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
