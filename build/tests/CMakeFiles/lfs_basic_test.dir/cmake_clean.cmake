file(REMOVE_RECURSE
  "CMakeFiles/lfs_basic_test.dir/lfs_basic_test.cpp.o"
  "CMakeFiles/lfs_basic_test.dir/lfs_basic_test.cpp.o.d"
  "lfs_basic_test"
  "lfs_basic_test.pdb"
  "lfs_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
