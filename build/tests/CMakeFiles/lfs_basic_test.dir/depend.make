# Empty dependencies file for lfs_basic_test.
# This may be replaced when dependencies are built.
