# Empty dependencies file for lfs_dirlog_test.
# This may be replaced when dependencies are built.
