file(REMOVE_RECURSE
  "CMakeFiles/lfs_dirlog_test.dir/lfs_dirlog_test.cpp.o"
  "CMakeFiles/lfs_dirlog_test.dir/lfs_dirlog_test.cpp.o.d"
  "lfs_dirlog_test"
  "lfs_dirlog_test.pdb"
  "lfs_dirlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_dirlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
