file(REMOVE_RECURSE
  "CMakeFiles/fd_table_test.dir/fd_table_test.cpp.o"
  "CMakeFiles/fd_table_test.dir/fd_table_test.cpp.o.d"
  "fd_table_test"
  "fd_table_test.pdb"
  "fd_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
