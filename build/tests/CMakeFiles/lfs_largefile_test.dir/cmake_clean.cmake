file(REMOVE_RECURSE
  "CMakeFiles/lfs_largefile_test.dir/lfs_largefile_test.cpp.o"
  "CMakeFiles/lfs_largefile_test.dir/lfs_largefile_test.cpp.o.d"
  "lfs_largefile_test"
  "lfs_largefile_test.pdb"
  "lfs_largefile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_largefile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
