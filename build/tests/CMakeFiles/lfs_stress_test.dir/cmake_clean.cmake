file(REMOVE_RECURSE
  "CMakeFiles/lfs_stress_test.dir/lfs_stress_test.cpp.o"
  "CMakeFiles/lfs_stress_test.dir/lfs_stress_test.cpp.o.d"
  "lfs_stress_test"
  "lfs_stress_test.pdb"
  "lfs_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
