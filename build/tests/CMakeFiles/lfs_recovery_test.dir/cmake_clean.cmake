file(REMOVE_RECURSE
  "CMakeFiles/lfs_recovery_test.dir/lfs_recovery_test.cpp.o"
  "CMakeFiles/lfs_recovery_test.dir/lfs_recovery_test.cpp.o.d"
  "lfs_recovery_test"
  "lfs_recovery_test.pdb"
  "lfs_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
