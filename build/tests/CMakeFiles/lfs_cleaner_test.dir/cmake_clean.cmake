file(REMOVE_RECURSE
  "CMakeFiles/lfs_cleaner_test.dir/lfs_cleaner_test.cpp.o"
  "CMakeFiles/lfs_cleaner_test.dir/lfs_cleaner_test.cpp.o.d"
  "lfs_cleaner_test"
  "lfs_cleaner_test.pdb"
  "lfs_cleaner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
