# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lfs_basic_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_cleaner_test[1]_include.cmake")
include("/root/repo/build/tests/ffs_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/check_test[1]_include.cmake")
include("/root/repo/build/tests/fd_table_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_dirlog_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_largefile_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_stress_test[1]_include.cmake")
