# Empty compiler generated dependencies file for fig10_user6_dist.
# This may be replaced when dependencies are built.
