file(REMOVE_RECURSE
  "CMakeFiles/fig10_user6_dist.dir/fig10_user6_dist.cpp.o"
  "CMakeFiles/fig10_user6_dist.dir/fig10_user6_dist.cpp.o.d"
  "fig10_user6_dist"
  "fig10_user6_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_user6_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
