file(REMOVE_RECURSE
  "CMakeFiles/fig8_small_file.dir/fig8_small_file.cpp.o"
  "CMakeFiles/fig8_small_file.dir/fig8_small_file.cpp.o.d"
  "fig8_small_file"
  "fig8_small_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_small_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
