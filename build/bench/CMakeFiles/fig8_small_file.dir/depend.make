# Empty dependencies file for fig8_small_file.
# This may be replaced when dependencies are built.
