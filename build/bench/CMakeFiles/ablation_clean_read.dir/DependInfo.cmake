
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_clean_read.cpp" "bench/CMakeFiles/ablation_clean_read.dir/ablation_clean_read.cpp.o" "gcc" "bench/CMakeFiles/ablation_clean_read.dir/ablation_clean_read.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/lfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ffs/CMakeFiles/lfs_ffs.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/lfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
