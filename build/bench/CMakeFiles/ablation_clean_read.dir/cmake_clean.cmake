file(REMOVE_RECURSE
  "CMakeFiles/ablation_clean_read.dir/ablation_clean_read.cpp.o"
  "CMakeFiles/ablation_clean_read.dir/ablation_clean_read.cpp.o.d"
  "ablation_clean_read"
  "ablation_clean_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clean_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
