# Empty compiler generated dependencies file for ablation_clean_read.
# This may be replaced when dependencies are built.
