file(REMOVE_RECURSE
  "CMakeFiles/fig5_greedy_dist.dir/fig5_greedy_dist.cpp.o"
  "CMakeFiles/fig5_greedy_dist.dir/fig5_greedy_dist.cpp.o.d"
  "fig5_greedy_dist"
  "fig5_greedy_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_greedy_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
