# Empty dependencies file for fig5_greedy_dist.
# This may be replaced when dependencies are built.
