file(REMOVE_RECURSE
  "CMakeFiles/fig4_greedy_sim.dir/fig4_greedy_sim.cpp.o"
  "CMakeFiles/fig4_greedy_sim.dir/fig4_greedy_sim.cpp.o.d"
  "fig4_greedy_sim"
  "fig4_greedy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_greedy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
