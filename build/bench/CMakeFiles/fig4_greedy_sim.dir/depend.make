# Empty dependencies file for fig4_greedy_sim.
# This may be replaced when dependencies are built.
