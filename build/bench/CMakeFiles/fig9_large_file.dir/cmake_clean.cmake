file(REMOVE_RECURSE
  "CMakeFiles/fig9_large_file.dir/fig9_large_file.cpp.o"
  "CMakeFiles/fig9_large_file.dir/fig9_large_file.cpp.o.d"
  "fig9_large_file"
  "fig9_large_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_large_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
