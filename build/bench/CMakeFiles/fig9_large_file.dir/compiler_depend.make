# Empty compiler generated dependencies file for fig9_large_file.
# This may be replaced when dependencies are built.
