# Empty dependencies file for andrew_like.
# This may be replaced when dependencies are built.
