file(REMOVE_RECURSE
  "CMakeFiles/andrew_like.dir/andrew_like.cpp.o"
  "CMakeFiles/andrew_like.dir/andrew_like.cpp.o.d"
  "andrew_like"
  "andrew_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/andrew_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
