# Empty dependencies file for fig3_write_cost.
# This may be replaced when dependencies are built.
