file(REMOVE_RECURSE
  "CMakeFiles/fig7_costbenefit_sim.dir/fig7_costbenefit_sim.cpp.o"
  "CMakeFiles/fig7_costbenefit_sim.dir/fig7_costbenefit_sim.cpp.o.d"
  "fig7_costbenefit_sim"
  "fig7_costbenefit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_costbenefit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
