# Empty compiler generated dependencies file for fig7_costbenefit_sim.
# This may be replaced when dependencies are built.
