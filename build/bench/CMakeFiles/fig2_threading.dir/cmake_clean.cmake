file(REMOVE_RECURSE
  "CMakeFiles/fig2_threading.dir/fig2_threading.cpp.o"
  "CMakeFiles/fig2_threading.dir/fig2_threading.cpp.o.d"
  "fig2_threading"
  "fig2_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
