# Empty dependencies file for fig2_threading.
# This may be replaced when dependencies are built.
