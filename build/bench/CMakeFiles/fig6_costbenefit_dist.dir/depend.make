# Empty dependencies file for fig6_costbenefit_dist.
# This may be replaced when dependencies are built.
