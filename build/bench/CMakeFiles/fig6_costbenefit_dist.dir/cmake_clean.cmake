file(REMOVE_RECURSE
  "CMakeFiles/fig6_costbenefit_dist.dir/fig6_costbenefit_dist.cpp.o"
  "CMakeFiles/fig6_costbenefit_dist.dir/fig6_costbenefit_dist.cpp.o.d"
  "fig6_costbenefit_dist"
  "fig6_costbenefit_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_costbenefit_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
