file(REMOVE_RECURSE
  "CMakeFiles/table3_recovery.dir/table3_recovery.cpp.o"
  "CMakeFiles/table3_recovery.dir/table3_recovery.cpp.o.d"
  "table3_recovery"
  "table3_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
