file(REMOVE_RECURSE
  "CMakeFiles/table4_composition.dir/table4_composition.cpp.o"
  "CMakeFiles/table4_composition.dir/table4_composition.cpp.o.d"
  "table4_composition"
  "table4_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
