# Empty compiler generated dependencies file for ablation_sim_episodes.
# This may be replaced when dependencies are built.
