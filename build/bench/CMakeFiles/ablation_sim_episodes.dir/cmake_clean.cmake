file(REMOVE_RECURSE
  "CMakeFiles/ablation_sim_episodes.dir/ablation_sim_episodes.cpp.o"
  "CMakeFiles/ablation_sim_episodes.dir/ablation_sim_episodes.cpp.o.d"
  "ablation_sim_episodes"
  "ablation_sim_episodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sim_episodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
