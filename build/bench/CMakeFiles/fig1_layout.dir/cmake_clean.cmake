file(REMOVE_RECURSE
  "CMakeFiles/fig1_layout.dir/fig1_layout.cpp.o"
  "CMakeFiles/fig1_layout.dir/fig1_layout.cpp.o.d"
  "fig1_layout"
  "fig1_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
