# Empty dependencies file for lfshell.
# This may be replaced when dependencies are built.
