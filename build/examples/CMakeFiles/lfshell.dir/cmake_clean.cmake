file(REMOVE_RECURSE
  "CMakeFiles/lfshell.dir/lfshell.cpp.o"
  "CMakeFiles/lfshell.dir/lfshell.cpp.o.d"
  "lfshell"
  "lfshell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfshell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
