# Empty compiler generated dependencies file for cleaner_lab.
# This may be replaced when dependencies are built.
