file(REMOVE_RECURSE
  "CMakeFiles/cleaner_lab.dir/cleaner_lab.cpp.o"
  "CMakeFiles/cleaner_lab.dir/cleaner_lab.cpp.o.d"
  "cleaner_lab"
  "cleaner_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaner_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
