# Empty compiler generated dependencies file for lfs_disk.
# This may be replaced when dependencies are built.
