file(REMOVE_RECURSE
  "CMakeFiles/lfs_disk.dir/block_device.cpp.o"
  "CMakeFiles/lfs_disk.dir/block_device.cpp.o.d"
  "CMakeFiles/lfs_disk.dir/crash_disk.cpp.o"
  "CMakeFiles/lfs_disk.dir/crash_disk.cpp.o.d"
  "CMakeFiles/lfs_disk.dir/disk_model.cpp.o"
  "CMakeFiles/lfs_disk.dir/disk_model.cpp.o.d"
  "CMakeFiles/lfs_disk.dir/file_disk.cpp.o"
  "CMakeFiles/lfs_disk.dir/file_disk.cpp.o.d"
  "CMakeFiles/lfs_disk.dir/mem_disk.cpp.o"
  "CMakeFiles/lfs_disk.dir/mem_disk.cpp.o.d"
  "CMakeFiles/lfs_disk.dir/sim_disk.cpp.o"
  "CMakeFiles/lfs_disk.dir/sim_disk.cpp.o.d"
  "liblfs_disk.a"
  "liblfs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
