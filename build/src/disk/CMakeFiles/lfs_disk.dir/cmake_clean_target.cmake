file(REMOVE_RECURSE
  "liblfs_disk.a"
)
