
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/block_device.cpp" "src/disk/CMakeFiles/lfs_disk.dir/block_device.cpp.o" "gcc" "src/disk/CMakeFiles/lfs_disk.dir/block_device.cpp.o.d"
  "/root/repo/src/disk/crash_disk.cpp" "src/disk/CMakeFiles/lfs_disk.dir/crash_disk.cpp.o" "gcc" "src/disk/CMakeFiles/lfs_disk.dir/crash_disk.cpp.o.d"
  "/root/repo/src/disk/disk_model.cpp" "src/disk/CMakeFiles/lfs_disk.dir/disk_model.cpp.o" "gcc" "src/disk/CMakeFiles/lfs_disk.dir/disk_model.cpp.o.d"
  "/root/repo/src/disk/file_disk.cpp" "src/disk/CMakeFiles/lfs_disk.dir/file_disk.cpp.o" "gcc" "src/disk/CMakeFiles/lfs_disk.dir/file_disk.cpp.o.d"
  "/root/repo/src/disk/mem_disk.cpp" "src/disk/CMakeFiles/lfs_disk.dir/mem_disk.cpp.o" "gcc" "src/disk/CMakeFiles/lfs_disk.dir/mem_disk.cpp.o.d"
  "/root/repo/src/disk/sim_disk.cpp" "src/disk/CMakeFiles/lfs_disk.dir/sim_disk.cpp.o" "gcc" "src/disk/CMakeFiles/lfs_disk.dir/sim_disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
