file(REMOVE_RECURSE
  "liblfs_sim.a"
)
