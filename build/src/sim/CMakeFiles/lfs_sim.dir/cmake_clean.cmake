file(REMOVE_RECURSE
  "CMakeFiles/lfs_sim.dir/sim.cpp.o"
  "CMakeFiles/lfs_sim.dir/sim.cpp.o.d"
  "liblfs_sim.a"
  "liblfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
