# Empty dependencies file for lfs_sim.
# This may be replaced when dependencies are built.
