file(REMOVE_RECURSE
  "liblfs_util.a"
)
