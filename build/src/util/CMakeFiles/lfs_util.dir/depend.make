# Empty dependencies file for lfs_util.
# This may be replaced when dependencies are built.
