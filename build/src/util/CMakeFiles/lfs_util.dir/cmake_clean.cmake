file(REMOVE_RECURSE
  "CMakeFiles/lfs_util.dir/crc32.cpp.o"
  "CMakeFiles/lfs_util.dir/crc32.cpp.o.d"
  "CMakeFiles/lfs_util.dir/histogram.cpp.o"
  "CMakeFiles/lfs_util.dir/histogram.cpp.o.d"
  "CMakeFiles/lfs_util.dir/rng.cpp.o"
  "CMakeFiles/lfs_util.dir/rng.cpp.o.d"
  "CMakeFiles/lfs_util.dir/status.cpp.o"
  "CMakeFiles/lfs_util.dir/status.cpp.o.d"
  "CMakeFiles/lfs_util.dir/table.cpp.o"
  "CMakeFiles/lfs_util.dir/table.cpp.o.d"
  "liblfs_util.a"
  "liblfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
