# Empty dependencies file for lfs_core.
# This may be replaced when dependencies are built.
