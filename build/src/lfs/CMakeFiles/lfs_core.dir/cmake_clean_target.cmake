file(REMOVE_RECURSE
  "liblfs_core.a"
)
