file(REMOVE_RECURSE
  "CMakeFiles/lfs_core.dir/check.cpp.o"
  "CMakeFiles/lfs_core.dir/check.cpp.o.d"
  "CMakeFiles/lfs_core.dir/inode_map.cpp.o"
  "CMakeFiles/lfs_core.dir/inode_map.cpp.o.d"
  "CMakeFiles/lfs_core.dir/layout.cpp.o"
  "CMakeFiles/lfs_core.dir/layout.cpp.o.d"
  "CMakeFiles/lfs_core.dir/lfs.cpp.o"
  "CMakeFiles/lfs_core.dir/lfs.cpp.o.d"
  "CMakeFiles/lfs_core.dir/lfs_cleaner.cpp.o"
  "CMakeFiles/lfs_core.dir/lfs_cleaner.cpp.o.d"
  "CMakeFiles/lfs_core.dir/lfs_io.cpp.o"
  "CMakeFiles/lfs_core.dir/lfs_io.cpp.o.d"
  "CMakeFiles/lfs_core.dir/lfs_namespace.cpp.o"
  "CMakeFiles/lfs_core.dir/lfs_namespace.cpp.o.d"
  "CMakeFiles/lfs_core.dir/lfs_recovery.cpp.o"
  "CMakeFiles/lfs_core.dir/lfs_recovery.cpp.o.d"
  "CMakeFiles/lfs_core.dir/seg_usage.cpp.o"
  "CMakeFiles/lfs_core.dir/seg_usage.cpp.o.d"
  "CMakeFiles/lfs_core.dir/segment_writer.cpp.o"
  "CMakeFiles/lfs_core.dir/segment_writer.cpp.o.d"
  "liblfs_core.a"
  "liblfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
