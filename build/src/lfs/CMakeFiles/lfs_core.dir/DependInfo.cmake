
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfs/check.cpp" "src/lfs/CMakeFiles/lfs_core.dir/check.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/check.cpp.o.d"
  "/root/repo/src/lfs/inode_map.cpp" "src/lfs/CMakeFiles/lfs_core.dir/inode_map.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/inode_map.cpp.o.d"
  "/root/repo/src/lfs/layout.cpp" "src/lfs/CMakeFiles/lfs_core.dir/layout.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/layout.cpp.o.d"
  "/root/repo/src/lfs/lfs.cpp" "src/lfs/CMakeFiles/lfs_core.dir/lfs.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/lfs.cpp.o.d"
  "/root/repo/src/lfs/lfs_cleaner.cpp" "src/lfs/CMakeFiles/lfs_core.dir/lfs_cleaner.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/lfs_cleaner.cpp.o.d"
  "/root/repo/src/lfs/lfs_io.cpp" "src/lfs/CMakeFiles/lfs_core.dir/lfs_io.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/lfs_io.cpp.o.d"
  "/root/repo/src/lfs/lfs_namespace.cpp" "src/lfs/CMakeFiles/lfs_core.dir/lfs_namespace.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/lfs_namespace.cpp.o.d"
  "/root/repo/src/lfs/lfs_recovery.cpp" "src/lfs/CMakeFiles/lfs_core.dir/lfs_recovery.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/lfs_recovery.cpp.o.d"
  "/root/repo/src/lfs/seg_usage.cpp" "src/lfs/CMakeFiles/lfs_core.dir/seg_usage.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/seg_usage.cpp.o.d"
  "/root/repo/src/lfs/segment_writer.cpp" "src/lfs/CMakeFiles/lfs_core.dir/segment_writer.cpp.o" "gcc" "src/lfs/CMakeFiles/lfs_core.dir/segment_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/lfs_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
