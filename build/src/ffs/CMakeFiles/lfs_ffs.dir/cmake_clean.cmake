file(REMOVE_RECURSE
  "CMakeFiles/lfs_ffs.dir/bitmap.cpp.o"
  "CMakeFiles/lfs_ffs.dir/bitmap.cpp.o.d"
  "CMakeFiles/lfs_ffs.dir/ffs.cpp.o"
  "CMakeFiles/lfs_ffs.dir/ffs.cpp.o.d"
  "CMakeFiles/lfs_ffs.dir/ffs_layout.cpp.o"
  "CMakeFiles/lfs_ffs.dir/ffs_layout.cpp.o.d"
  "liblfs_ffs.a"
  "liblfs_ffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_ffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
