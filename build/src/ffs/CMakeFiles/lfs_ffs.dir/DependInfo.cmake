
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ffs/bitmap.cpp" "src/ffs/CMakeFiles/lfs_ffs.dir/bitmap.cpp.o" "gcc" "src/ffs/CMakeFiles/lfs_ffs.dir/bitmap.cpp.o.d"
  "/root/repo/src/ffs/ffs.cpp" "src/ffs/CMakeFiles/lfs_ffs.dir/ffs.cpp.o" "gcc" "src/ffs/CMakeFiles/lfs_ffs.dir/ffs.cpp.o.d"
  "/root/repo/src/ffs/ffs_layout.cpp" "src/ffs/CMakeFiles/lfs_ffs.dir/ffs_layout.cpp.o" "gcc" "src/ffs/CMakeFiles/lfs_ffs.dir/ffs_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/lfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/lfs_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
