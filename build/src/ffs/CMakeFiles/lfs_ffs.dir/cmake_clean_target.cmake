file(REMOVE_RECURSE
  "liblfs_ffs.a"
)
