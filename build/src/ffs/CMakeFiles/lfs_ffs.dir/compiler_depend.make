# Empty compiler generated dependencies file for lfs_ffs.
# This may be replaced when dependencies are built.
