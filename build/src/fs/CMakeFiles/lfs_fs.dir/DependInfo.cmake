
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/fd_table.cpp" "src/fs/CMakeFiles/lfs_fs.dir/fd_table.cpp.o" "gcc" "src/fs/CMakeFiles/lfs_fs.dir/fd_table.cpp.o.d"
  "/root/repo/src/fs/file_system.cpp" "src/fs/CMakeFiles/lfs_fs.dir/file_system.cpp.o" "gcc" "src/fs/CMakeFiles/lfs_fs.dir/file_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
