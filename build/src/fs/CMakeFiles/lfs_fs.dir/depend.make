# Empty dependencies file for lfs_fs.
# This may be replaced when dependencies are built.
