file(REMOVE_RECURSE
  "CMakeFiles/lfs_fs.dir/fd_table.cpp.o"
  "CMakeFiles/lfs_fs.dir/fd_table.cpp.o.d"
  "CMakeFiles/lfs_fs.dir/file_system.cpp.o"
  "CMakeFiles/lfs_fs.dir/file_system.cpp.o.d"
  "liblfs_fs.a"
  "liblfs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
