file(REMOVE_RECURSE
  "liblfs_fs.a"
)
