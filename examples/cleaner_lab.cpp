// Cleaner laboratory: watch the segment cleaner work (Sections 3.3-3.6).
//
//   $ ./cleaner_lab
//
// Fills a small disk, fragments it with deletions, then forces cleaning
// passes and prints a segment-utilization map before and after — a visual
// of the copy-and-compact mechanism and of the cost-benefit policy's
// preference for fragmented and cold segments.

#include <cstdio>
#include <string>
#include <vector>

#include "src/disk/mem_disk.h"
#include "src/lfs/lfs.h"

using namespace lfs;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

// One character per segment: '.' clean, '0'-'9' deciles of live data, '*'
// full, '>' the active segment.
void PrintMap(const LfsFileSystem& fs, const char* label) {
  const SegUsage& usage = fs.seg_usage();
  std::printf("%s\n  ", label);
  for (SegNo seg = 0; seg < usage.nsegments(); seg++) {
    const SegUsageEntry& e = usage.Get(seg);
    char c;
    if (e.state == SegState::kActive) {
      c = '>';
    } else if (e.state == SegState::kClean) {
      c = '.';
    } else {
      double u = usage.Utilization(seg);
      c = u >= 0.95 ? '*' : static_cast<char>('0' + static_cast<int>(u * 10));
    }
    std::printf("%c", c);
    if ((seg + 1) % 64 == 0) {
      std::printf("\n  ");
    }
  }
  std::printf("\n");
}
}  // namespace

int main() {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 64;  // 256-KB segments so the map is interesting
  cfg.clean_lo = 4;
  cfg.clean_hi = 8;
  cfg.segments_per_pass = 8;
  MemDisk disk(cfg.block_size, 24 * 1024 * 1024 / cfg.block_size);  // 24 MB
  auto fs_r = LfsFileSystem::Mkfs(&disk, cfg);
  Check(fs_r.status(), "mkfs");
  std::unique_ptr<LfsFileSystem> fs = std::move(fs_r).value();

  // Fill with 64-KB files, then delete two of every three — classic
  // fragmentation: every segment keeps some live data.
  const int kFiles = 250;
  std::vector<uint8_t> content(64 * 1024, 0x42);
  for (int i = 0; i < kFiles; i++) {
    Check(fs->WriteFile("/f" + std::to_string(i), content), "fill");
  }
  Check(fs->Sync(), "sync");
  PrintMap(*fs, "after filling ('.'=clean, 0-9=live deciles, *=full, >=active):");

  for (int i = 0; i < kFiles; i++) {
    if (i % 3 != 0) {
      Check(fs->Unlink("/f" + std::to_string(i)), "delete");
    }
  }
  Check(fs->Sync(), "sync");
  PrintMap(*fs, "after deleting 2/3 of the files (fragmented):");

  std::printf("running cleaning passes...\n");
  uint32_t total = 0;
  for (int pass = 0; pass < 16; pass++) {
    auto n = fs->ForceClean();
    Check(n.status(), "clean");
    if (*n == 0) {
      break;
    }
    total += *n;
  }
  PrintMap(*fs, "after cleaning (live data compacted into few full segments):");

  const LfsStats& st = fs->stats();
  std::printf("cleaned %u source segments; %llu cleaned total this session "
              "(%.0f%% were empty), avg utilization of non-empty cleaned: %.2f\n",
              total, static_cast<unsigned long long>(st.segments_cleaned),
              st.EmptyCleanedFraction() * 100, st.AvgCleanedUtilization());
  std::printf("write cost so far: %.2f (1.0 = pure sequential logging)\n", st.WriteCost());

  // All surviving files still read back.
  int checked = 0;
  for (int i = 0; i < kFiles; i += 3) {
    auto data = fs->ReadFile("/f" + std::to_string(i));
    Check(data.status(), "verify");
    if (*data != content) {
      std::fprintf(stderr, "content mismatch on /f%d!\n", i);
      return 1;
    }
    checked++;
  }
  std::printf("verified %d surviving files intact after compaction.\n", checked);
  return 0;
}
