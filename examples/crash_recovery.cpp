// Crash-recovery walkthrough (Section 4 of the paper, live).
//
//   $ ./crash_recovery
//
// Writes files around a checkpoint, crashes the "machine" at a nasty moment
// (a torn log write included), then remounts and narrates what the
// checkpoint restored, what roll-forward recovered, and what was lost from
// the write buffer — and why the result is consistent either way.

#include <cstdio>
#include <string>
#include <vector>

#include "src/disk/crash_disk.h"
#include "src/disk/mem_disk.h"
#include "src/lfs/lfs.h"

using namespace lfs;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

std::vector<uint8_t> Payload(char fill, size_t size) {
  return std::vector<uint8_t>(size, static_cast<uint8_t>(fill));
}
}  // namespace

int main() {
  LfsConfig cfg;
  cfg.write_buffer_blocks = 64;  // small buffer so flush boundaries are visible
  CrashDisk disk(std::make_unique<MemDisk>(cfg.block_size, 16384));  // 64 MB
  auto fs_r = LfsFileSystem::Mkfs(&disk, cfg);
  Check(fs_r.status(), "mkfs");
  std::unique_ptr<LfsFileSystem> fs = std::move(fs_r).value();

  // Act 1: durable data — written, then checkpointed.
  Check(fs->WriteFile("/checkpointed", Payload('A', 100 * 1024)), "write A");
  Check(fs->Sync(), "checkpoint");
  std::printf("wrote /checkpointed (100 KB) and took a checkpoint\n");

  // Act 2: flushed but not checkpointed — lives only in the log tail.
  Check(fs->WriteFile("/in_log_tail", Payload('B', 400 * 1024)), "write B");
  std::printf("wrote /in_log_tail (400 KB): flushed to the log, no checkpoint\n");

  // Act 3: an unlink whose directory-log record is in the tail.
  Check(fs->Unlink("/checkpointed"), "unlink");
  Check(fs->WriteFile("/push", Payload('D', 300 * 1024)), "write D");  // pushes it out
  std::printf("unlinked /checkpointed; the operation is in the directory log\n");

  // Act 4: still sitting in the in-memory write buffer at crash time.
  Check(fs->WriteFile("/buffered_only", Payload('C', 2 * 1024)), "write C");
  std::printf("wrote /buffered_only (2 KB): still buffered in memory\n");

  // CRASH — and make the final in-flight write torn, for good measure.
  disk.CrashAfterWrites(0, /*torn_blocks=*/1);
  (void)fs->WriteFile("/never", Payload('E', 200 * 1024));
  std::printf("\n*** CRASH (the in-flight log write was torn) ***\n\n");
  fs.reset();
  disk.ClearCrash();

  auto remount = LfsFileSystem::Mount(&disk, cfg);
  Check(remount.status(), "recovery mount");
  fs = std::move(remount).value();
  std::printf("remounted; roll-forward replayed %llu partial-segment writes\n\n",
              static_cast<unsigned long long>(fs->stats().rollforward_partials));

  auto report = [&](const char* path, const char* story) {
    bool exists = fs->Exists(path);
    uint64_t size = 0;
    if (exists) {
      auto st = fs->StatPath(path);
      size = st.ok() ? st->size : 0;
    }
    std::printf("  %-18s %-9s %8llu bytes   %s\n", path, exists ? "EXISTS" : "gone",
                static_cast<unsigned long long>(size), story);
  };
  report("/checkpointed", "checkpointed, then unlinked: the dirlog replay removes it");
  report("/in_log_tail", "recovered by roll-forward from the log tail");
  report("/buffered_only", "was only in the write buffer: lost, by design");
  report("/push", "tail data: recovered up to the last complete log write");
  report("/never", "its log write was torn: the CRC rejects the partial");

  // The filesystem is consistent and fully usable after recovery.
  Check(fs->WriteFile("/after_recovery", Payload('F', 10 * 1024)), "post-recovery write");
  Check(fs->Sync(), "post-recovery checkpoint");
  std::printf("\npost-recovery write + checkpoint succeeded; the log lives on.\n");
  return 0;
}
