// Quickstart: the smallest useful tour of the public API.
//
//   $ ./quickstart
//
// Formats a log-structured filesystem on an in-memory disk, creates a
// directory tree, writes and reads files, renames, deletes, takes a
// checkpoint, remounts, and prints the log statistics along the way.

#include <cstdio>
#include <string>

#include "src/disk/mem_disk.h"
#include "src/lfs/lfs.h"

using namespace lfs;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  // 1. A 64-MB in-memory disk with 4-KB blocks, formatted as LFS with 1-MB
  //    segments and the cost-benefit cleaning policy (the defaults).
  LfsConfig cfg;
  MemDisk disk(cfg.block_size, 64 * 1024 * 1024 / cfg.block_size);
  auto fs_r = LfsFileSystem::Mkfs(&disk, cfg);
  Check(fs_r.status(), "mkfs");
  std::unique_ptr<LfsFileSystem> fs = std::move(fs_r).value();
  std::printf("formatted: %u segments of %u KB\n", fs->superblock().nsegments,
              fs->superblock().segment_bytes() / 1024);

  // 2. Namespace operations.
  Check(fs->Mkdir("/projects"), "mkdir");
  Check(fs->Mkdir("/projects/lfs"), "mkdir");
  std::string text = "All modifications are written sequentially to a log.\n";
  Check(fs->WriteFile("/projects/lfs/README",
                      std::span(reinterpret_cast<const uint8_t*>(text.data()), text.size())),
        "write file");
  Check(fs->Link("/projects/lfs/README", "/README_link"), "hard link");
  Check(fs->Rename("/projects/lfs/README", "/projects/lfs/README.md"), "rename");

  // 3. Data I/O through an inode handle.
  auto ino_r = fs->Create("/projects/lfs/data.bin");
  Check(ino_r.status(), "create");
  InodeNum ino = *ino_r;
  std::vector<uint8_t> payload(100 * 1024);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(i);
  }
  Check(fs->WriteAt(ino, 0, payload), "write 100 KB");
  Check(fs->Truncate(ino, 64 * 1024), "truncate");

  auto back = fs->ReadFile("/projects/lfs/README.md");
  Check(back.status(), "read back");
  std::printf("read back %zu bytes: %.*s", back->size(), static_cast<int>(back->size()),
              reinterpret_cast<const char*>(back->data()));

  // 4. Directory listing.
  auto entries = fs->ReadDir("/projects/lfs");
  Check(entries.status(), "readdir");
  std::printf("/projects/lfs contains:\n");
  for (const DirEntry& e : *entries) {
    auto st = fs->Stat(e.ino);
    Check(st.status(), "stat");
    std::printf("  %-12s %8llu bytes  (inode %u, %s)\n", e.name.c_str(),
                static_cast<unsigned long long>(st->size), e.ino,
                st->type == FileType::kDirectory ? "dir" : "file");
  }

  // 5. Durability: checkpoint, drop the mount, mount again.
  Check(fs->Unmount(), "unmount");
  fs.reset();
  auto again = LfsFileSystem::Mount(&disk, cfg);
  Check(again.status(), "remount");
  fs = std::move(again).value();
  std::printf("remounted: %s still present: %s\n", "/projects/lfs/README.md",
              fs->Exists("/projects/lfs/README.md") ? "yes" : "NO");

  // 6. A peek at the log statistics.
  const LfsStats& st = fs->stats();
  std::printf("log: %llu KB written since mount, %u of %u segments clean, "
              "disk %.0f%% utilized\n",
              static_cast<unsigned long long>(st.total_log_written() / 1024),
              fs->clean_segments(), fs->superblock().nsegments,
              fs->disk_utilization() * 100);
  return 0;
}
