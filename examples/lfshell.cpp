// lfshell: an interactive shell over a persistent LFS disk image.
//
//   $ ./lfshell [image-file]       (default: lfs.img, 64 MB, created on demand)
//
// Commands: ls [dir], mkdir <dir>, write <file> <text...>, cat <file>,
// append <file> <text...>, rm <file>, rmdir <dir>, mv <a> <b>, ln <a> <b>,
// stat <path>, df, segs, clean, sync, help, quit. The image persists across
// runs — quit without `sync` and restart to watch roll-forward recover (or
// discard) your latest commands.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/disk/file_disk.h"
#include "src/lfs/lfs.h"

using namespace lfs;

namespace {

void PrintStatus(const Status& st) {
  if (!st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
  }
}

std::string NormPath(const std::string& arg) {
  return arg.empty() || arg[0] != '/' ? "/" + arg : arg;
}

void Help() {
  std::printf(
      "commands:\n"
      "  ls [dir]              list a directory\n"
      "  mkdir <dir>           create a directory\n"
      "  write <file> <text>   create/overwrite a file with text\n"
      "  append <file> <text>  append text to a file\n"
      "  cat <file>            print a file\n"
      "  rm <file> | rmdir <d> remove a file / empty directory\n"
      "  mv <from> <to>        rename (atomic)\n"
      "  ln <file> <link>      hard link\n"
      "  stat <path>           inode details\n"
      "  df                    space + log statistics\n"
      "  segs                  segment utilization map\n"
      "  clean                 force a cleaning pass\n"
      "  sync                  checkpoint (make everything durable)\n"
      "  quit                  exit WITHOUT checkpointing (try it!)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string image = argc > 1 ? argv[1] : "lfs.img";
  LfsConfig cfg;
  const uint64_t blocks = 64ull * 1024 * 1024 / cfg.block_size;
  auto disk_r = FileDisk::Open(image, cfg.block_size, blocks);
  if (!disk_r.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", image.c_str(),
                 disk_r.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<FileDisk> disk = std::move(disk_r).value();

  // Mount if it is already an LFS image; format otherwise.
  std::unique_ptr<LfsFileSystem> fs;
  auto mounted = LfsFileSystem::Mount(disk.get(), cfg);
  if (mounted.ok()) {
    fs = std::move(mounted).value();
    std::printf("mounted %s (recovered %llu log writes past the checkpoint)\n", image.c_str(),
                static_cast<unsigned long long>(fs->stats().rollforward_partials));
  } else {
    auto made = LfsFileSystem::Mkfs(disk.get(), cfg);
    if (!made.ok()) {
      std::fprintf(stderr, "mkfs failed: %s\n", made.status().ToString().c_str());
      return 1;
    }
    fs = std::move(made).value();
    std::printf("formatted fresh LFS on %s (64 MB)\n", image.c_str());
  }
  std::printf("type 'help' for commands\n");

  std::string line;
  while (std::printf("lfs> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, a, b;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      std::printf("exiting without checkpoint — buffered writes are lost, the log tail\n");
      std::printf("will be recovered by roll-forward on the next mount.\n");
      break;
    }
    if (cmd == "help") {
      Help();
    } else if (cmd == "ls") {
      in >> a;
      auto entries = fs->ReadDir(a.empty() ? "/" : NormPath(a));
      if (!entries.ok()) {
        PrintStatus(entries.status());
        continue;
      }
      for (const DirEntry& e : *entries) {
        auto st = fs->Stat(e.ino);
        std::printf("  %c %8llu  %s\n", e.type == FileType::kDirectory ? 'd' : '-',
                    st.ok() ? static_cast<unsigned long long>(st->size) : 0ull,
                    e.name.c_str());
      }
    } else if (cmd == "mkdir") {
      in >> a;
      PrintStatus(fs->Mkdir(NormPath(a)));
    } else if (cmd == "write" || cmd == "append") {
      in >> a;
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text[0] == ' ') {
        text.erase(0, 1);
      }
      text += "\n";
      std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(text.data()),
                                     text.size());
      std::string path = NormPath(a);
      Result<InodeNum> ino = fs->Lookup(path);
      if (!ino.ok()) {
        ino = fs->Create(path);
      }
      if (!ino.ok()) {
        PrintStatus(ino.status());
        continue;
      }
      uint64_t off = 0;
      if (cmd == "append") {
        auto st = fs->Stat(*ino);
        off = st.ok() ? st->size : 0;
      } else {
        PrintStatus(fs->Truncate(*ino, 0));
      }
      PrintStatus(fs->WriteAt(*ino, off, bytes));
    } else if (cmd == "cat") {
      in >> a;
      auto data = fs->ReadFile(NormPath(a));
      if (!data.ok()) {
        PrintStatus(data.status());
        continue;
      }
      fwrite(data->data(), 1, data->size(), stdout);
    } else if (cmd == "rm") {
      in >> a;
      PrintStatus(fs->Unlink(NormPath(a)));
    } else if (cmd == "rmdir") {
      in >> a;
      PrintStatus(fs->Rmdir(NormPath(a)));
    } else if (cmd == "mv") {
      in >> a >> b;
      PrintStatus(fs->Rename(NormPath(a), NormPath(b)));
    } else if (cmd == "ln") {
      in >> a >> b;
      PrintStatus(fs->Link(NormPath(a), NormPath(b)));
    } else if (cmd == "stat") {
      in >> a;
      auto st = fs->StatPath(NormPath(a));
      if (!st.ok()) {
        PrintStatus(st.status());
        continue;
      }
      std::printf("  inode %u  %s  %llu bytes  nlink %u  version %u  mtime %llu\n", st->ino,
                  st->type == FileType::kDirectory ? "directory" : "regular file",
                  static_cast<unsigned long long>(st->size), st->nlink, st->version,
                  static_cast<unsigned long long>(st->mtime));
    } else if (cmd == "df") {
      const LfsStats& st = fs->stats();
      std::printf("  disk %.0f%% utilized, %u/%u segments clean, %llu buffered dirty blocks\n",
                  fs->disk_utilization() * 100, fs->clean_segments(),
                  fs->superblock().nsegments,
                  static_cast<unsigned long long>(fs->dirty_buffered_blocks()));
      std::printf("  log written this session: %llu KB; write cost %.2f; %llu checkpoints;\n"
                  "  %llu segments cleaned (%.0f%% empty)\n",
                  static_cast<unsigned long long>(st.total_log_written() / 1024),
                  st.WriteCost(), static_cast<unsigned long long>(st.checkpoints),
                  static_cast<unsigned long long>(st.segments_cleaned),
                  st.EmptyCleanedFraction() * 100);
    } else if (cmd == "segs") {
      const SegUsage& usage = fs->seg_usage();
      std::printf("  ");
      for (SegNo seg = 0; seg < usage.nsegments(); seg++) {
        const SegUsageEntry& e = usage.Get(seg);
        char c = e.state == SegState::kActive  ? '>'
                 : e.state == SegState::kClean ? '.'
                 : usage.Utilization(seg) >= 0.95
                     ? '*'
                     : static_cast<char>('0' + static_cast<int>(usage.Utilization(seg) * 10));
        std::printf("%c", c);
        if ((seg + 1) % 64 == 0) {
          std::printf("\n  ");
        }
      }
      std::printf("\n  ('.'=clean, 0-9=live deciles, *=full, >=active)\n");
    } else if (cmd == "clean") {
      auto n = fs->ForceClean();
      if (n.ok()) {
        std::printf("  reclaimed %u segments\n", *n);
      } else {
        PrintStatus(n.status());
      }
    } else if (cmd == "sync") {
      PrintStatus(fs->Sync());
      std::printf("  checkpoint written\n");
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
