// posix_app: using the POSIX-flavored descriptor layer (FdTable) — the way
// an application ported from Unix would talk to the filesystem. Implements a
// tiny "rotating log writer": appends records to a log file, rotates it when
// it grows past a limit, and tails the current log — all through
// open/write/lseek/read/close.

#include <cstdio>
#include <string>
#include <vector>

#include "src/disk/mem_disk.h"
#include "src/fs/fd_table.h"
#include "src/lfs/lfs.h"

using namespace lfs;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  LfsConfig cfg;
  MemDisk disk(cfg.block_size, 16384);  // 64 MB
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  FdTable fds(fs.get());
  Check(fs->Mkdir("/var"), "mkdir /var");
  Check(fs->Mkdir("/var/log"), "mkdir /var/log");

  const uint64_t kRotateAt = 16 * 1024;
  int rotation = 0;

  // Append records O_APPEND-style; rotate at the size limit.
  auto log_fd = fds.Open("/var/log/app.log", kWrOnly | kCreate | kAppend);
  Check(log_fd.status(), "open log");
  int fd = *log_fd;
  for (int i = 0; i < 2000; i++) {
    char line[128];
    int n = std::snprintf(line, sizeof(line), "%08d event=%s seq=%d\n", i,
                          i % 3 == 0 ? "checkpoint" : "write", i * 7);
    std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(line),
                                   static_cast<size_t>(n));
    Check(fds.Write(fd, bytes).status(), "append");

    auto st = fds.Fstat(fd);
    Check(st.status(), "fstat");
    if (st->size >= kRotateAt) {
      Check(fds.Close(fd), "close");
      std::string rotated = "/var/log/app.log." + std::to_string(rotation++);
      Check(fs->Rename("/var/log/app.log", rotated), "rotate");
      log_fd = fds.Open("/var/log/app.log", kWrOnly | kCreate | kAppend);
      Check(log_fd.status(), "reopen");
      fd = *log_fd;
      std::printf("rotated -> %s\n", rotated.c_str());
    }
  }
  Check(fds.Close(fd), "close");

  // Tail the last 5 lines of the live log with pread/lseek.
  auto tail_fd = fds.Open("/var/log/app.log", kRdOnly);
  Check(tail_fd.status(), "open for tail");
  auto st = fds.Fstat(*tail_fd);
  Check(st.status(), "fstat");
  uint64_t start = st->size > 300 ? st->size - 300 : 0;
  std::vector<uint8_t> buf(st->size - start);
  Check(fds.Pread(*tail_fd, start, buf).status(), "pread");
  // Print the last few whole lines.
  std::string text(buf.begin(), buf.end());
  size_t pos = text.size();
  for (int lines = 0; lines < 5 && pos != std::string::npos && pos > 0; lines++) {
    pos = text.rfind('\n', pos - 2);
  }
  std::printf("tail of /var/log/app.log:\n%s", text.substr(pos == std::string::npos ? 0 : pos + 1).c_str());
  Check(fds.Close(*tail_fd), "close");

  auto entries = fs->ReadDir("/var/log");
  Check(entries.status(), "readdir");
  std::printf("\n/var/log after %d rotations:\n", rotation);
  for (const DirEntry& e : *entries) {
    auto s = fs->Stat(e.ino);
    std::printf("  %8llu  %s\n",
                s.ok() ? static_cast<unsigned long long>(s->size) : 0ull, e.name.c_str());
  }
  Check(fs->Sync(), "sync");
  std::printf("\nall descriptors closed: %zu open\n", fds.open_count());
  return 0;
}
